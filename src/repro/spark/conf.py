"""SparkConf: Spark-flavoured configuration with the paper's defaults."""

from __future__ import annotations

from typing import Any, Mapping

from repro.util.config import Config

# Defaults mirror the paper's evaluation setup (Sec. VII-C) where relevant.
_DEFAULTS: dict[str, Any] = {
    "spark.app.name": "repro-app",
    "spark.master": "local[1]",
    "spark.default.parallelism": "8",
    # Shuffle data plane (values from vanilla Spark's defaults)
    "spark.reducer.maxSizeInFlight": "48m",
    "spark.reducer.maxReqsInFlight": "5",
    "spark.shuffle.compress": "true",
    # Transport selection:
    #   nio (vanilla) | rdma | mpi-basic | mpi-opt | mpi-coll
    "spark.repro.transport": "nio",
    # Determinism: seeds the simulation engine's RNG (repro.util.rng).
    "spark.repro.seed": "0",
    # Fault tolerance (vanilla Spark defaults where they exist)
    "spark.task.maxFailures": "4",
    "spark.stage.maxConsecutiveAttempts": "4",
    "spark.speculation": "false",
    "spark.speculation.multiplier": "1.5",
    "spark.speculation.quantile": "0.75",
    "spark.blacklist.enabled": "true",
    # MPI reaction to rank death: abort (MPI_ERRORS_ARE_FATAL) | shrink (ULFM)
    "spark.repro.mpi.faultMode": "abort",
    # Observability (repro.obs): metrics snapshots / Chrome-trace spans /
    # causal message tracing are opt-in; trace and causal imply enabled.
    # The registry itself is always on.
    "spark.repro.obs.enabled": "false",
    "spark.repro.obs.trace": "false",
    "spark.repro.obs.causal": "false",
    # Multi-tenant job server (repro.jobserver): inter-job scheduler
    # (fifo | fair | pack), arrival-trace shape, per-job profile fidelity.
    "spark.repro.jobserver.scheduler": "fifo",
    "spark.repro.jobserver.meanInterarrival": "4.0",
    "spark.repro.jobserver.fidelity": "0.5",
    # Paper Sec. VII-C memory settings
    "spark.worker.memory": "120g",
    "spark.daemon.memory": "6g",
    "spark.executor.memory": "120g",
    "spark.driver.memory": "6g",
}


class SparkConf(Config):
    """Configuration for a :class:`~repro.spark.context.SparkContext`."""

    def __init__(self, values: Mapping[str, Any] | None = None) -> None:
        merged = dict(_DEFAULTS)
        if values:
            merged.update(values)
        super().__init__(merged)

    def set_app_name(self, name: str) -> "SparkConf":
        return self.set("spark.app.name", name)  # type: ignore[return-value]

    def set_master(self, master: str) -> "SparkConf":
        return self.set("spark.master", master)  # type: ignore[return-value]

    @property
    def app_name(self) -> str:
        return str(self.get("spark.app.name"))

    @property
    def default_parallelism(self) -> int:
        return self.get_int("spark.default.parallelism")
