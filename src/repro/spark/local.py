"""Local execution backend: actually runs jobs, in process.

This is the engine behind the examples and correctness tests, and the
*trace generator* for the performance simulation: every stage execution is
measured (records, serialized bytes, shuffle matrices) into the context's
:class:`~repro.spark.tracing.TraceRecorder`.

Execution is deterministic (tasks run in partition order); the shuffle
data plane uses an in-memory map-output registry that mirrors Spark's
SortShuffleManager behaviour: map tasks partition (and optionally combine)
their output per reduce partition; reduce tasks concatenate the buckets
destined to them.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.spark.dag import Job, Stage
from repro.spark.rdd import ShuffleDependency, TaskContext
from repro.spark.tracing import StageTrace
from repro.util.serialization import estimate_batch, sizeof


class MapOutputRegistry:
    """Where map-task shuffle output lives between stages (the "RAM disk")."""

    def __init__(self) -> None:
        # shuffle_id -> list over map partitions -> {reduce_id: (records, nbytes)}
        self._outputs: dict[int, list[dict[int, tuple[list[Any], int]]]] = {}

    def is_computed(self, shuffle_id: int) -> bool:
        return shuffle_id in self._outputs

    def init_shuffle(self, shuffle_id: int, num_maps: int) -> None:
        self._outputs[shuffle_id] = [dict() for _ in range(num_maps)]

    def put(
        self,
        shuffle_id: int,
        map_id: int,
        reduce_id: int,
        records: list[Any],
        nbytes: int,
    ) -> None:
        self._outputs[shuffle_id][map_id][reduce_id] = (records, nbytes)

    def fetch(self, shuffle_id: int, reduce_id: int) -> Iterator[Any]:
        if shuffle_id not in self._outputs:
            raise KeyError(f"shuffle {shuffle_id} has not been computed")
        for map_out in self._outputs[shuffle_id]:
            bucket = map_out.get(reduce_id)
            if bucket is not None:
                yield from bucket[0]

    def block_sizes(self, shuffle_id: int) -> np.ndarray:
        """Matrix [map_id, reduce_id] of serialized bucket sizes."""
        maps = self._outputs[shuffle_id]
        n_red = 1 + max(
            (rid for m in maps for rid in m), default=-1
        )
        out = np.zeros((len(maps), max(n_red, 1)), dtype=np.int64)
        for mid, m in enumerate(maps):
            for rid, (_records, nbytes) in m.items():
                out[mid, rid] = nbytes
        return out


class LocalTaskContext(TaskContext):
    """Task context bound to the local backend's registries."""

    def __init__(self, backend: "LocalBackend") -> None:
        self.backend = backend
        self.shuffle_bytes_read = 0

    def shuffle_fetch(self, dep: ShuffleDependency, reduce_id: int) -> Iterator[Any]:
        return self.backend.map_outputs.fetch(dep.shuffle_id, reduce_id)

    def get_cached(self, rdd_id: int, split: int):
        return self.backend.cache.get((rdd_id, split))

    def put_cached(self, rdd_id: int, split: int, data: list[Any]) -> None:
        self.backend.cache[(rdd_id, split)] = data


class LocalBackend:
    """Serial in-process executor with trace capture."""

    def __init__(self) -> None:
        self.map_outputs = MapOutputRegistry()
        self.cache: dict[tuple[int, int], list[Any]] = {}

    # -- job execution ---------------------------------------------------------
    def run_job(self, job: Job, recorder=None) -> list[Any]:
        job_trace = recorder.begin_job(job.job_id, job.description) if recorder else None
        results: list[Any] = []
        for stage in job.stages:
            if stage.is_shuffle_map:
                dep = stage.shuffle_dep
                assert dep is not None
                if self.map_outputs.is_computed(dep.shuffle_id):
                    continue  # shuffle reuse across jobs
                trace = self._run_shuffle_map_stage(job, stage)
            else:
                results, trace = self._run_result_stage(job, stage)
            if job_trace is not None:
                job_trace.stages.append(trace)
        return results

    # -- stage runners ------------------------------------------------------------
    def _run_shuffle_map_stage(self, job: Job, stage: Stage) -> StageTrace:
        dep = stage.shuffle_dep
        assert dep is not None
        n_maps = stage.num_tasks
        n_reds = dep.partitioner.num_partitions
        self.map_outputs.init_shuffle(dep.shuffle_id, n_maps)
        trace = StageTrace(
            stage_id=stage.id,
            label=job.label_of(stage),
            kind=stage.kind(),
            num_tasks=n_maps,
            shuffle_id=dep.shuffle_id,
            shuffle_matrix=np.zeros((n_maps, n_reds), dtype=np.int64),
            shuffle_records=np.zeros((n_maps, n_reds), dtype=np.int64),
        )
        agg = dep.aggregator
        for map_id in range(n_maps):
            task_ctx = LocalTaskContext(self)
            buckets: list[Any] = [None] * n_reds
            # Batched data plane: materialize the partition (shuffle map
            # stages always consume their input fully), then partition
            # all keys in one vectorized call. Record order within each
            # bucket is the arrival order, exactly as the per-record
            # loop produced.
            records = list(stage.rdd.iterator(map_id, task_ctx))
            records_in = len(records)
            rids = dep.partitioner.partition_many([kv[0] for kv in records])
            if dep.map_side_combine and agg is not None:
                merge_value = agg.merge_value
                create_combiner = agg.create_combiner
                for (k, v), rid in zip(records, rids):
                    bucket = buckets[rid]
                    if bucket is None:
                        bucket = buckets[rid] = {}
                    if k in bucket:
                        bucket[k] = merge_value(bucket[k], v)
                    else:
                        bucket[k] = create_combiner(v)
                bucket_lists = [
                    list(b.items()) if b else [] for b in buckets
                ]
            else:
                for kv, rid in zip(records, rids):
                    bucket = buckets[rid]
                    if bucket is None:
                        bucket = buckets[rid] = []
                    bucket.append(kv)
                bucket_lists = [b or [] for b in buckets]

            records_out = 0
            bytes_out = 0
            for rid, bucket in enumerate(bucket_lists):
                if not bucket:
                    continue
                nbytes = estimate_batch(bucket)
                self.map_outputs.put(dep.shuffle_id, map_id, rid, bucket, nbytes)
                trace.shuffle_matrix[map_id, rid] = nbytes
                trace.shuffle_records[map_id, rid] = len(bucket)
                records_out += len(bucket)
                bytes_out += nbytes
            trace.records_in.append(records_in)
            trace.records_out.append(records_out)
            trace.bytes_out.append(bytes_out)
        return trace

    def _run_result_stage(self, job: Job, stage: Stage) -> tuple[list[Any], StageTrace]:
        trace = StageTrace(
            stage_id=stage.id,
            label=job.label_of(stage),
            kind=stage.kind(),
            num_tasks=len(job.partitions),
        )
        # If the result stage reads shuffles, record what each task fetched.
        shuffle_deps = [
            dep for dep in stage.rdd.deps if isinstance(dep, ShuffleDependency)
        ]
        if shuffle_deps:
            n_maps = max(d.parent.num_partitions for d in shuffle_deps)
            trace.fetch_matrix = np.zeros(
                (stage.rdd.num_partitions, n_maps), dtype=np.int64
            )
            for dep in shuffle_deps:
                sizes = self.map_outputs.block_sizes(dep.shuffle_id)
                n_red = min(sizes.shape[1], stage.rdd.num_partitions)
                trace.fetch_matrix[:n_red, : sizes.shape[0]] += sizes[:, :n_red].T

        results = []
        for pid in job.partitions:
            task_ctx = LocalTaskContext(self)
            records = 0

            def counting(it):
                nonlocal records
                for x in it:
                    records += 1
                    yield x

            value = job.func(counting(stage.rdd.iterator(pid, task_ctx)))
            results.append(value)
            trace.records_in.append(records)
            trace.records_out.append(1)
            trace.bytes_out.append(sizeof(value))
        return results, trace
