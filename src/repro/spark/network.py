"""Spark's network-common layer: transport clients/servers over Netty.

Reproduces the classes the paper names in its Fig-4 flow:

* :class:`TransportContext` — creates Netty clients and servers ("each
  component in the Spark cluster [has] its own set of Netty servers and
  clients", paper Sec. II-C),
* :class:`TransportClient` / the response handler — outstanding fetch/RPC
  futures matched by id,
* :class:`TransportRequestHandler` — server-side dispatch to the
  :class:`RpcHandler` and :class:`OneForOneStreamManager`,
* :class:`MessageEncoder` / :class:`MessageDecoder` — the codec pair in
  every channel pipeline (the Optimized design inserts its MPI handlers
  around exactly these).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.netty import (
    Bootstrap,
    Channel,
    ChannelHandler,
    EventLoop,
    ServerBootstrap,
    WireFrame,
)
from repro.spark.messages import (
    ChunkFetchFailure,
    ChunkFetchRequest,
    ChunkFetchSuccess,
    Message,
    OneWayMessage,
    RpcFailure,
    RpcRequest,
    RpcResponse,
    StreamChunkId,
    StreamFailure,
    StreamRequest,
    StreamResponse,
    decode_message,
    encode_message,
    ensure_trace,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.engine import SimEngine
    from repro.simnet.events import Event
    from repro.simnet.sockets import SocketAddress, SocketStack


class TransportError(RuntimeError):
    """Fetch or RPC failure surfaced to the caller."""


class FetchFailedException(TransportError):
    """A shuffle-block fetch failed (Spark's FetchFailedException).

    Unlike an ordinary task error, the DAG scheduler reacts to this by
    marking the source executor's map output lost and resubmitting the
    parent stage (see repro.faults.recovery).
    """

    def __init__(self, address: Any, message: str, exec_id: int | None = None) -> None:
        super().__init__(f"fetch from {address} failed: {message}")
        self.address = address
        self.exec_id = exec_id


# ---------------------------------------------------------------------------
# codec handlers
# ---------------------------------------------------------------------------

class MessageEncoder(ChannelHandler):
    """Outbound: Message → WireFrame.

    The single chokepoint every outbound Spark message crosses on every
    transport, so this is where causal tracing records ``msg.send`` (and
    mints a root context for messages nobody parented).
    """

    def write(self, ctx, msg, promise):
        if isinstance(msg, Message):
            causal = ctx.channel.env.causal
            if causal.enabled:
                trace = ensure_trace(msg, causal)
                causal.send(
                    trace, msg.type_tag, msg.body_nbytes,
                    channel=ctx.channel.id.as_long_text(),
                )
            msg = encode_message(msg)
        ctx.write(msg, promise)


class MessageDecoder(ChannelHandler):
    """Inbound: WireFrame → Message.

    The inbound chokepoint: the carried trace context survives decoding,
    and ``msg.recv`` closes the message's causal span (send → recv edge).
    """

    def channel_read(self, ctx, msg):
        if isinstance(msg, WireFrame):
            msg = decode_message(msg)
            if msg.trace_ctx is not None:
                ctx.channel.env.causal.recv(
                    msg.trace_ctx, msg.type_tag, msg.body_nbytes,
                    channel=ctx.channel.id.as_long_text(),
                )
        ctx.fire_channel_read(msg)


# ---------------------------------------------------------------------------
# server side
# ---------------------------------------------------------------------------

class RpcHandler:
    """Application hook for RPCs (subclassed by the shuffle service)."""

    def receive(
        self,
        client_channel: Channel,
        payload: Any,
        reply: Callable[[Any, int], None],
    ) -> None:
        """Handle an RpcRequest; call ``reply(payload, nbytes)`` exactly once."""
        raise NotImplementedError

    def receive_one_way(self, client_channel: Channel, payload: Any) -> None:
        """Handle a OneWayMessage (no reply)."""


class OneForOneStreamManager:
    """Registers streams of chunks for fetching (Spark's stream manager)."""

    def __init__(self) -> None:
        self._streams: dict[int, Callable[[int, int], tuple[Any, int]]] = {}
        self._owners: dict[int, Any] = {}  # stream_id -> owning application
        self._ids = itertools.count(1000)
        self.chunks_served = 0
        self._invalid_reason: str | None = None

    def register_stream(
        self,
        chunk_provider: Callable[[int, int], tuple[Any, int]],
        owner: Any = None,
    ) -> int:
        """``chunk_provider(chunk_index, num_blocks) -> (payload, nbytes)``.

        ``owner`` namespaces the stream to one application (multi-tenant
        job server); :meth:`release_owner` sweeps all of an app's streams
        when it finishes or is aborted.
        """
        stream_id = next(self._ids)
        self._streams[stream_id] = chunk_provider
        if owner is not None:
            self._owners[stream_id] = owner
        return stream_id

    def get_chunk(self, stream_id: int, chunk_index: int, num_blocks: int) -> tuple[Any, int]:
        provider = self._streams.get(stream_id)
        if provider is None:
            reason = self._invalid_reason
            detail = f" ({reason})" if reason else ""
            raise TransportError(f"unknown stream {stream_id}{detail}")
        self.chunks_served += 1
        return provider(chunk_index, num_blocks)

    def release(self, stream_id: int) -> None:
        self._streams.pop(stream_id, None)
        self._owners.pop(stream_id, None)

    def release_owner(self, owner: Any) -> int:
        """Drop every stream registered under ``owner``; returns the count.

        The job server calls this when an application completes or is
        aborted — the executor-side cleanup of that app's shuffle state
        (Spark's ExternalShuffleService ``applicationRemoved``).
        """
        stale = [sid for sid, own in self._owners.items() if own == owner]
        for sid in stale:
            self._streams.pop(sid, None)
            self._owners.pop(sid, None)
        return len(stale)

    def invalidate_all(self, reason: str) -> None:
        """Drop every registered stream (lost map output / shuffle files).

        Subsequent fetches get a ChunkFetchFailure naming ``reason`` — the
        missing-blocks path of the server-side handler.
        """
        self._streams.clear()
        self._owners.clear()
        self._invalid_reason = reason


class TransportRequestHandler(ChannelHandler):
    """Server-side dispatch of request messages."""

    def __init__(self, rpc_handler: RpcHandler, stream_manager: OneForOneStreamManager) -> None:
        self.rpc_handler = rpc_handler
        self.stream_manager = stream_manager

    def channel_read(self, ctx, msg):
        channel = ctx.channel
        if isinstance(msg, ChunkFetchRequest):
            self._handle_chunk_fetch(channel, msg)
        elif isinstance(msg, RpcRequest):
            self._handle_rpc(channel, msg)
        elif isinstance(msg, OneWayMessage):
            self.rpc_handler.receive_one_way(channel, msg.payload)
        elif isinstance(msg, StreamRequest):
            self._handle_stream(channel, msg)
        else:
            ctx.fire_channel_read(msg)

    @staticmethod
    def _as_reply(channel: Channel, request: Message, response: Message) -> Message:
        """Link a response into the request's trace (request→response edge)."""
        if request.trace_ctx is not None:
            response.trace_ctx = channel.env.causal.child(request.trace_ctx)
        return response

    def _handle_chunk_fetch(self, channel: Channel, msg: ChunkFetchRequest) -> None:
        sid = msg.stream_chunk_id
        try:
            payload, nbytes = self.stream_manager.get_chunk(
                sid.stream_id, sid.chunk_index, msg.num_blocks
            )
        except Exception as exc:
            channel.write_and_flush(
                self._as_reply(channel, msg, ChunkFetchFailure(sid, str(exc)))
            )
            return
        try:
            channel.write_and_flush(
                self._as_reply(
                    channel, msg, ChunkFetchSuccess(sid, payload, nbytes, msg.num_blocks)
                )
            )
        except Exception as exc:
            # The response could not be put on the wire (e.g. the MPI body
            # isend refused because the peer rank died). Try to tell the
            # client; if even that fails the client learns via the channel.
            try:
                channel.write_and_flush(
                    self._as_reply(
                        channel, msg, ChunkFetchFailure(sid, f"write failed: {exc}")
                    )
                )
            except Exception:
                pass

    def _handle_rpc(self, channel: Channel, msg: RpcRequest) -> None:
        def reply(payload: Any, nbytes: int = 0) -> None:
            channel.write_and_flush(
                self._as_reply(channel, msg, RpcResponse(msg.request_id, payload, nbytes))
            )

        try:
            self.rpc_handler.receive(channel, msg.payload, reply)
        except Exception as exc:
            channel.write_and_flush(
                self._as_reply(channel, msg, RpcFailure(msg.request_id, str(exc)))
            )

    def _handle_stream(self, channel: Channel, msg: StreamRequest) -> None:
        try:
            payload, nbytes = self.stream_manager.get_chunk(int(msg.stream_id), 0, 1)
        except Exception as exc:
            channel.write_and_flush(
                self._as_reply(channel, msg, StreamFailure(msg.stream_id, str(exc)))
            )
            return
        channel.write_and_flush(
            self._as_reply(channel, msg, StreamResponse(msg.stream_id, nbytes, payload))
        )


# ---------------------------------------------------------------------------
# client side
# ---------------------------------------------------------------------------

class TransportResponseHandler(ChannelHandler):
    """Matches response messages to the futures awaiting them."""

    def __init__(self, env: "SimEngine") -> None:
        self.env = env
        self.outstanding_fetches: dict[StreamChunkId, "Event"] = {}
        self.outstanding_rpcs: dict[int, "Event"] = {}
        self.outstanding_streams: dict[str, "Event"] = {}

    def channel_read(self, ctx, msg):
        if isinstance(msg, ChunkFetchSuccess):
            future = self.outstanding_fetches.pop(msg.stream_chunk_id, None)
            if future is not None:
                future.succeed(msg)
        elif isinstance(msg, ChunkFetchFailure):
            future = self.outstanding_fetches.pop(msg.stream_chunk_id, None)
            if future is not None:
                future.fail(TransportError(msg.error))
        elif isinstance(msg, RpcResponse):
            future = self.outstanding_rpcs.pop(msg.request_id, None)
            if future is not None:
                future.succeed(msg.payload)
        elif isinstance(msg, RpcFailure):
            future = self.outstanding_rpcs.pop(msg.request_id, None)
            if future is not None:
                future.fail(TransportError(msg.error))
        elif isinstance(msg, StreamResponse):
            future = self.outstanding_streams.pop(msg.stream_id, None)
            if future is not None:
                future.succeed(msg)
        elif isinstance(msg, StreamFailure):
            future = self.outstanding_streams.pop(msg.stream_id, None)
            if future is not None:
                future.fail(TransportError(msg.error))
        else:
            ctx.fire_channel_read(msg)

    def _fail_all(self, exc_factory: Callable[[], Exception]) -> int:
        """Fail every outstanding future; returns how many were failed."""
        failed = 0
        for table in (
            self.outstanding_fetches,
            self.outstanding_rpcs,
            self.outstanding_streams,
        ):
            futures = list(table.values())
            table.clear()
            for future in futures:
                if not future.triggered:
                    future.fail(exc_factory())
                    failed += 1
        return failed

    def channel_inactive(self, ctx):
        remote = ctx.channel.remote_address
        self._fail_all(lambda: TransportError(f"connection to {remote} closed"))
        causal = ctx.channel.env.causal
        if causal.enabled:
            causal.channel_closed(
                ctx.channel.id.as_long_text(), f"connection to {remote} closed"
            )
        ctx.fire_channel_inactive()

    def exception_caught(self, ctx, exc):
        remote = ctx.channel.remote_address
        self._fail_all(lambda: TransportError(f"channel to {remote}: {exc}"))
        causal = ctx.channel.env.causal
        if causal.enabled:
            causal.channel_closed(
                ctx.channel.id.as_long_text(), f"channel to {remote}: {exc}"
            )
        ctx.fire_exception_caught(exc)


class TransportClient:
    """Client face of one channel: chunk fetches, RPCs, streams."""

    _rpc_ids = itertools.count(1)

    def __init__(self, channel: Channel, handler: TransportResponseHandler) -> None:
        self.channel = channel
        self.handler = handler

    @property
    def env(self):
        return self.channel.env

    def _parent(self, msg: Message, trace_parent) -> Message:
        """Attach a causal child context when the caller named a parent span."""
        if trace_parent is not None:
            causal = self.env.causal
            if causal.enabled:
                msg.trace_ctx = causal.child(trace_parent)
        return msg

    def fetch_chunk(
        self, stream_id: int, chunk_index: int, num_blocks: int = 1, trace_parent=None
    ) -> "Event":
        """Request one chunk; returns a future of :class:`ChunkFetchSuccess`."""
        sid = StreamChunkId(stream_id, chunk_index)
        future = self.env.event()
        self.handler.outstanding_fetches[sid] = future
        self.channel.write_and_flush(
            self._parent(ChunkFetchRequest(sid, num_blocks), trace_parent)
        )
        return future

    def send_rpc(self, payload: Any, nbytes: int = 0, trace_parent=None) -> "Event":
        """Send an RPC; returns a future of the reply payload."""
        rpc_id = next(TransportClient._rpc_ids)
        future = self.env.event()
        self.handler.outstanding_rpcs[rpc_id] = future
        self.channel.write_and_flush(
            self._parent(RpcRequest(rpc_id, payload, nbytes), trace_parent)
        )
        return future

    def send_one_way(self, payload: Any, nbytes: int = 0, trace_parent=None) -> None:
        self.channel.write_and_flush(
            self._parent(OneWayMessage(payload, nbytes), trace_parent)
        )

    def stream(self, stream_id: str, trace_parent=None) -> "Event":
        """Open a stream; returns a future of :class:`StreamResponse`."""
        future = self.env.event()
        self.handler.outstanding_streams[stream_id] = future
        self.channel.write_and_flush(
            self._parent(StreamRequest(stream_id), trace_parent)
        )
        return future

    def close(self) -> None:
        self.channel.close()


# ---------------------------------------------------------------------------
# context & factory
# ---------------------------------------------------------------------------

class TransportContext:
    """Creates servers and clients sharing one RpcHandler/StreamManager.

    ``pipeline_hook(channel, is_server)`` lets the MPI transports inject
    their extra handlers / replace the transport write — this is the
    modularity the paper claims for targeting the Netty layer.
    """

    def __init__(
        self,
        stack: "SocketStack",
        rpc_handler: RpcHandler | None = None,
        stream_manager: OneForOneStreamManager | None = None,
        pipeline_hook: Callable[[Channel, bool], None] | None = None,
    ) -> None:
        self.stack = stack
        self.env = stack.env
        self.rpc_handler = rpc_handler or RpcHandler()
        self.stream_manager = stream_manager or OneForOneStreamManager()
        self.pipeline_hook = pipeline_hook

    # -- pipelines ----------------------------------------------------------
    def init_server_channel(self, channel: Channel) -> None:
        p = channel.pipeline
        p.add_last("encoder", MessageEncoder())
        p.add_last("decoder", MessageDecoder())
        if self.pipeline_hook is not None:
            self.pipeline_hook(channel, True)
        p.add_last(
            "requestHandler",
            TransportRequestHandler(self.rpc_handler, self.stream_manager),
        )

    def init_client_channel(self, channel: Channel) -> TransportResponseHandler:
        p = channel.pipeline
        p.add_last("encoder", MessageEncoder())
        p.add_last("decoder", MessageDecoder())
        if self.pipeline_hook is not None:
            self.pipeline_hook(channel, False)
        handler = TransportResponseHandler(self.env)
        p.add_last("responseHandler", handler)
        return handler

    # -- endpoints ----------------------------------------------------------
    def create_server(self, loop: EventLoop, node, port: int, child_group=None):
        return (
            ServerBootstrap(self.stack)
            .group(loop, child_group)
            .child_handler(self.init_server_channel)
            .bind(node, port)
        )

    def create_client(
        self, loop: EventLoop, node, remote: "SocketAddress"
    ) -> Generator:
        """Connect and build a :class:`TransportClient` (generator)."""
        holder: dict[str, TransportResponseHandler] = {}

        def init(channel: Channel) -> None:
            holder["handler"] = self.init_client_channel(channel)

        channel = yield from (
            Bootstrap(self.stack).group(loop).handler(init).connect(node, remote)
        )
        return TransportClient(channel, holder["handler"])


class TransportClientFactory:
    """Pools one client per remote address per source node (Spark pools
    ``spark.shuffle.io.numConnectionsPerPeer``, default 1). New clients'
    channels are spread over an event-loop group so a blocked handler on
    one connection does not stall the others."""

    def __init__(self, context: TransportContext, loops, node) -> None:
        from repro.netty.eventloop import EventLoopGroup

        self.context = context
        if isinstance(loops, EventLoop):
            loops = EventLoopGroup([loops])
        self.group: "EventLoopGroup" = loops
        self.node = node
        self._clients: dict[tuple[str, int], TransportClient] = {}
        self._connecting: dict[tuple[str, int], Any] = {}

    def get_client(self, remote: "SocketAddress") -> Generator:
        key = (remote.host, remote.port)
        while True:
            client = self._clients.get(key)
            if client is not None and client.channel.active:
                return client
            pending = self._connecting.get(key)
            if pending is None:
                break
            # Another task is already connecting: join its wait.
            yield pending
        done = self.context.env.event()
        self._connecting[key] = done
        try:
            client = yield from self.context.create_client(
                self.group.next(), self.node, remote
            )
            self._clients[key] = client
        finally:
            del self._connecting[key]
            done.succeed()
        return client
