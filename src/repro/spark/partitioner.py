"""Partitioners: how keys map to reduce partitions.

:class:`HashPartitioner` is Spark's default for groupByKey/reduceByKey;
:class:`RangePartitioner` backs sortByKey and is built by *sampling the
input* — which is why SortByTest's sort job is "Job2" in the paper's stage
breakdown: the sampling pass is its own job.
"""

from __future__ import annotations

import bisect
import random
from typing import Any, Iterable, Sequence

import numpy as np

# Python's hash() is the identity on ints in [0, 2**61 - 1) (it reduces
# modulo the Mersenne prime 2**61 - 1), which is what lets the batched
# hash path below replace per-key hash() calls with one vectorized mod.
_HASH_IDENTITY_MAX = (1 << 61) - 1


class Partitioner:
    """Maps keys to partition ids in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError(f"need >= 1 partition, got {num_partitions}")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def partition_many(self, keys: Sequence[Any]) -> list[int]:
        """Batched :meth:`partition`; subclasses add vectorized paths.

        Must return exactly ``[self.partition(k) for k in keys]`` — the
        shuffle data plane relies on that identity for byte-identical
        traffic matrices.
        """
        part = self.partition
        return [part(k) for k in keys]

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.num_partitions == other.num_partitions

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Spark's default: ``hash(key) mod numPartitions`` (non-negative)."""

    def partition(self, key: Any) -> int:
        return hash(key) % self.num_partitions

    def partition_many(self, keys: Sequence[Any]) -> list[int]:
        # Vectorized path for all-int key batches (the common shuffle
        # case) where hash(k) == k; anything else — bools, negatives,
        # huge ints, mixed or non-int keys — falls back per key.
        if keys and set(map(type, keys)) == {int}:
            try:
                arr = np.fromiter(keys, dtype=np.int64, count=len(keys))
            except OverflowError:
                arr = None
            if arr is not None and int(arr.min()) >= 0 and int(arr.max()) < _HASH_IDENTITY_MAX:
                return (arr % self.num_partitions).tolist()
        part = self.partition
        return [part(k) for k in keys]


class RangePartitioner(Partitioner):
    """Sorted-range partitioning from sampled split points.

    ``bounds`` has ``num_partitions - 1`` ascending split keys; keys ≤
    ``bounds[i]`` land in partition ``i``.
    """

    def __init__(self, bounds: Sequence[Any], ascending: bool = True) -> None:
        super().__init__(len(bounds) + 1)
        self.bounds = list(bounds)
        self.ascending = ascending
        for a, b in zip(self.bounds, self.bounds[1:]):
            if a > b:
                raise ValueError("range bounds must be ascending")

    def partition(self, key: Any) -> int:
        idx = bisect.bisect_left(self.bounds, key)
        if not self.ascending:
            idx = self.num_partitions - 1 - idx
        return idx

    def partition_many(self, keys: Sequence[Any]) -> list[int]:
        # Vectorized searchsorted for all-int keys against all-int
        # bounds: np.searchsorted(side="left") on exact int64 values is
        # bisect_left. Floats are excluded (NaN ordering differs) and
        # anything unrepresentable in int64 falls back per key.
        if (
            keys
            and self.bounds
            and set(map(type, keys)) == {int}
            and set(map(type, self.bounds)) == {int}
        ):
            try:
                karr = np.fromiter(keys, dtype=np.int64, count=len(keys))
                barr = np.fromiter(
                    self.bounds, dtype=np.int64, count=len(self.bounds)
                )
            except OverflowError:
                karr = None
            if karr is not None:
                idx = np.searchsorted(barr, karr, side="left")
                if not self.ascending:
                    idx = self.num_partitions - 1 - idx
                return idx.tolist()
        part = self.partition
        return [part(k) for k in keys]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangePartitioner)
            and other.bounds == self.bounds
            and other.ascending == self.ascending
        )

    def __hash__(self) -> int:
        return hash(("RangePartitioner", tuple(self.bounds), self.ascending))

    @staticmethod
    def bounds_from_sample(
        sample: Iterable[Any], num_partitions: int, seed: int = 17
    ) -> list[Any]:
        """Choose ``num_partitions - 1`` split points from a key sample.

        Mirrors Spark's reservoir-sample + weighted-split approach closely
        enough: sort the sample and take evenly spaced quantiles.
        """
        keys = sorted(sample)
        if num_partitions <= 1 or not keys:
            return []
        bounds: list[Any] = []
        step = len(keys) / num_partitions
        last = None
        for i in range(1, num_partitions):
            candidate = keys[min(int(i * step), len(keys) - 1)]
            if last is None or candidate > last:
                bounds.append(candidate)
                last = candidate
        return bounds


# Spark samples ~20 items per output partition when building range bounds.
SAMPLE_SIZE_PER_PARTITION = 20


def sample_for_range_bounds(records: Iterable[Any], num_partitions: int, seed: int = 17):
    """Reservoir-sample keys for RangePartitioner construction."""
    target = SAMPLE_SIZE_PER_PARTITION * num_partitions
    rng = random.Random(seed)
    reservoir: list[Any] = []
    for i, key in enumerate(records):
        if len(reservoir) < target:
            reservoir.append(key)
        else:
            j = rng.randint(0, i)
            if j < target:
                reservoir[j] = key
    return reservoir
