"""A working mini-Spark: RDDs, DAG scheduler, shuffle, and network layer.

Substitutes for Apache Spark 3.3 at the architectural level the paper
operates on. The RDD/DAG/shuffle core actually computes; the network
subpackage reproduces Spark's network-common layer (Table II message
types, TransportContext, BlockTransferService) on top of
:mod:`repro.netty`, which is where the MPI transports plug in.
"""

from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.spark.dag import DAGScheduler, Job, Stage
from repro.spark.local import LocalBackend, MapOutputRegistry
from repro.spark.partitioner import HashPartitioner, Partitioner, RangePartitioner
from repro.spark.rdd import (
    RDD,
    Aggregator,
    CoGroupedRDD,
    Dependency,
    GeneratedRDD,
    MapPartitionsRDD,
    NarrowDependency,
    ParallelCollectionRDD,
    ShuffleDependency,
    ShuffledRDD,
    TaskContext,
    UnionRDD,
)
from repro.spark.standalone import StandaloneMaster, StandaloneWorker
from repro.spark.tracing import JobTrace, StageTrace, TraceRecorder

__all__ = [
    "SparkConf",
    "SparkContext",
    "RDD",
    "Aggregator",
    "Dependency",
    "NarrowDependency",
    "ShuffleDependency",
    "ParallelCollectionRDD",
    "GeneratedRDD",
    "MapPartitionsRDD",
    "ShuffledRDD",
    "CoGroupedRDD",
    "UnionRDD",
    "TaskContext",
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "DAGScheduler",
    "Job",
    "Stage",
    "LocalBackend",
    "MapOutputRegistry",
    "TraceRecorder",
    "JobTrace",
    "StageTrace",
    "StandaloneMaster",
    "StandaloneWorker",
]
