"""SparkContext: the user's entry point."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.spark.conf import SparkConf
from repro.spark.dag import DAGScheduler, Job
from repro.spark.local import LocalBackend
from repro.spark.rdd import GeneratedRDD, ParallelCollectionRDD, RDD
from repro.spark.tracing import TraceRecorder


class SparkContext:
    """Creates RDDs and runs jobs on a backend (local by default).

    >>> sc = SparkContext()
    >>> sc.parallelize(range(10), 2).map(lambda x: x * x).sum()
    285
    """

    def __init__(self, conf: SparkConf | None = None, backend=None) -> None:
        self.conf = conf or SparkConf()
        self.backend = backend or LocalBackend()
        self.dag_scheduler = DAGScheduler(self)
        self.tracer = TraceRecorder()
        self._stopped = False

    # -- RDD creation ------------------------------------------------------
    @property
    def default_parallelism(self) -> int:
        return self.conf.default_parallelism

    def parallelize(self, data: Iterable[Any], num_partitions: int | None = None) -> RDD:
        data = list(data)
        n = num_partitions or self.default_parallelism
        return ParallelCollectionRDD(self, data, max(1, min(n, max(len(data), 1))))

    def range(self, n: int, num_partitions: int | None = None) -> RDD:
        parts = num_partitions or self.default_parallelism

        def gen(split: int):
            lo = (n * split) // parts
            hi = (n * (split + 1)) // parts
            return range(lo, hi)

        return GeneratedRDD(self, parts, gen, name=f"range({n})")

    def generated(
        self,
        num_partitions: int,
        gen_fn: Callable[[int], Iterable[Any]],
        name: str = "generated",
    ) -> RDD:
        """Partitioned data from a generator function (workload data gen)."""
        return GeneratedRDD(self, num_partitions, gen_fn, name=name)

    # -- job execution ---------------------------------------------------------
    def run_job(
        self,
        rdd: RDD,
        func: Callable,
        partitions: Sequence[int] | None = None,
        description: str = "",
    ) -> list[Any]:
        if self._stopped:
            raise RuntimeError("SparkContext has been stopped")
        job = self.dag_scheduler.build_job(rdd, func, partitions, description)
        recorder = self.tracer if self.tracer.enabled else None
        return self.backend.run_job(job, recorder=recorder)

    def stop(self) -> None:
        self._stopped = True

    def __enter__(self) -> "SparkContext":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
