"""Simulated Spark cluster: master/driver/workers/executors on simnet.

This module deploys a Spark-shaped cluster onto the discrete-event
simulator and executes :class:`~repro.harness.profile.WorkloadProfile`
stages on it. The **shuffle data plane is fully real**: reduce tasks open
block streams with RPCs and fetch chunks through Netty channels (with the
transport under test — NIO, RDMA, MPI-Basic, MPI-Optimized), with Spark's
``maxBytesInFlight`` windowing. Control-plane chatter (task launch RPCs)
is modeled as a fixed per-task dispatch delay — it is the same across all
transports and negligible against the paper's stage times.

For the MPI transports, the cluster comes up through the paper's Fig-3
flow: wrapper ranks are "mpiexec"-launched (workers + master + driver in
``MPI_COMM_WORLD``), executor launch specs are allgathered across the
world, and executors are spawned with ``MPI_Comm_spawn_multiple`` so that
executor↔executor channels bind to ``DPM_COMM`` and parent↔executor
channels to the intercommunicator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

import numpy as np

from repro.core.endpoint import MpiEndpoint
from repro.core.handshake import HandshakeError
from repro.harness.profile import (
    RAMDISK_READ_BPS,
    RAMDISK_WRITE_BPS,
    TASK_SCHED_DELAY_S,
    ComputeStage,
    ShuffleReadStage,
    ShuffleWriteStage,
    WorkloadProfile,
)
from repro.harness.systems import SystemConfig
from repro.mpi.dpm import SpawnSpec
from repro.mpi.errors import MPIError, WorldAbortedError
from repro.mpi.runtime import RankSpec
from repro.netty.eventloop import EventLoopGroup
from repro.simnet.engine import SimEngine
from repro.simnet.resources import Resource
from repro.simnet.sockets import SocketAddress, SocketError
from repro.simnet.topology import LinkDown, MessageDropped, SimCluster
from repro.spark.network import (
    FetchFailedException,
    OneForOneStreamManager,
    RpcHandler,
    TransportClientFactory,
    TransportContext,
    TransportError,
)
from repro.transports import make_transport
from repro.util.units import MiB, US

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.flightrec import FlightRecorder
    from repro.obs.registry import MetricsSnapshot

SHUFFLE_PORT_BASE = 7400

# One OpenBlocks RPC creates fetch requests of at most this size
# (Spark: maxSizeInFlight / 5 = 48 MiB / 5).
TARGET_REQUEST_BYTES = int(48 * MiB / 5)
MAX_BYTES_IN_FLIGHT = 48 * MiB

# Residual per-block client-side bookkeeping not covered by the wire model
# (block manager lookups, iterator advancement).
PER_BLOCK_CLIENT_S = 0.8 * US
# Extra header bytes per additional block aggregated into one chunk.
PER_BLOCK_WIRE_BYTES = 48

# Collective shuffle exchanges draw matching tags upward from here so they
# never collide with the small per-handle collective sequence numbers.
_COLL_TAG_BASE = 1 << 20

# Failures a reduce task converts into FetchFailedException (the Spark
# scheduler's stage-resubmission trigger). WorldAbortedError is excluded:
# an aborted MPI world means the whole job is gone, not one map output.
_FETCHABLE_ERRORS = (
    TransportError,
    HandshakeError,
    SocketError,
    MPIError,
    LinkDown,
    MessageDropped,
)


class ShuffleOpenBlocksHandler(RpcHandler):
    """Server side of OneForOneBlockFetcher's OpenBlocks RPC.

    Request: ``("open_blocks", nbytes, n_blocks)`` — multi-tenant clients
    append their application namespace as a fourth element, which scopes
    the registered stream to that app (swept on app completion). Registers
    a stream whose chunks split the requested bytes into
    ≤ TARGET_REQUEST_BYTES pieces; replies ``(stream_id, [chunk sizes],
    [chunk block counts])``.
    """

    def __init__(self, streams: OneForOneStreamManager) -> None:
        self.streams = streams
        self.opens_served = 0

    def receive(self, client_channel, payload, reply):
        kind, nbytes, n_blocks = payload[:3]
        owner = payload[3] if len(payload) > 3 else None
        if kind != "open_blocks":
            raise ValueError(f"unexpected rpc {kind!r}")
        self.opens_served += 1
        sizes: list[int] = []
        remaining = int(nbytes)
        while remaining > 0:
            take = min(remaining, TARGET_REQUEST_BYTES)
            sizes.append(take)
            remaining -= take
        if not sizes:
            sizes = [0]
        blocks = _split_blocks(int(n_blocks), len(sizes))
        wire_sizes = [
            s + max(b - 1, 0) * PER_BLOCK_WIRE_BYTES for s, b in zip(sizes, blocks)
        ]

        def provider(chunk_index: int, num_blocks: int) -> tuple[Any, int]:
            return None, wire_sizes[chunk_index]

        stream_id = self.streams.register_stream(provider, owner=owner)
        reply((stream_id, wire_sizes, blocks), 64)


def _split_blocks(n_blocks: int, n_chunks: int) -> list[int]:
    base = n_blocks // n_chunks
    rem = n_blocks % n_chunks
    return [base + (1 if i < rem else 0) for i in range(n_chunks)]


class _TaskMetrics:
    """One namespace's task/shuffle-read counters (Spark's task metrics).

    The default (anonymous) namespace keeps the historical
    ``spark.scheduler.*`` names so single-application runs publish exactly
    the metric census the committed figure goldens pin; each job-server
    application gets its own ``spark.app.<ns>.scheduler.*`` bundle.
    """

    __slots__ = (
        "tasks", "compute", "write", "fetch_wait", "combine",
        "remote_bytes", "local_bytes", "h_fetch_wait",
    )

    def __init__(self, m, prefix: str) -> None:
        self.tasks = m.counter(f"{prefix}.tasks_finished")
        self.compute = m.counter(f"{prefix}.compute_s")
        self.write = m.counter(f"{prefix}.write_s")
        self.fetch_wait = m.counter(f"{prefix}.fetch_wait_s")
        self.combine = m.counter(f"{prefix}.combine_s")
        self.remote_bytes = m.counter(f"{prefix}.remote_fetch_bytes")
        self.local_bytes = m.counter(f"{prefix}.local_read_bytes")
        self.h_fetch_wait = m.histogram(f"{prefix}.task_fetch_wait_s")


@dataclass
class AppHandle:
    """Per-application execution context on a multi-tenant cluster.

    Everything that :mod:`repro.spark.deploy` historically kept global to
    the (single) driver becomes per-application through this handle: the
    RNG namespace (``seed`` is derived from ``(cluster seed, app id)``, so
    an app's stochastic choices are identical however many neighbours it
    shares the cluster with), the metrics namespace, the inter-job
    scheduler's concurrency grant (``gate``), and the executor subset the
    app may run tasks on.
    """

    app_id: int
    name: str
    seed: int
    namespace: str  # metrics/stream namespace, e.g. "app3"
    gate: "Any | None" = None  # SlotGate enforcing the current slot grant
    executor_ids: tuple[int, ...] | None = None  # None = whole cluster


class SimExecutor:
    """One executor JVM: event loop, shuffle server, pooled clients."""

    def __init__(
        self,
        sim: "SparkSimCluster",
        exec_id: int,
        node_index: int,
        endpoint: MpiEndpoint | None,
    ) -> None:
        self.sim = sim
        self.exec_id = exec_id
        self.node = sim.cluster.node(node_index)
        self.endpoint = endpoint
        self.cores = sim.cores_per_executor
        transport = sim.transport
        # Spark's transport pools run several IO threads; channels spread
        # over them so one blocked handler (the Optimized design's MPI_Recv)
        # does not stall every connection.
        n_io = min(sim.io_threads, max(1, self.cores // 2))
        self.loops = EventLoopGroup(
            [transport.make_loop(f"exec{exec_id}-io{i}", endpoint) for i in range(n_io)]
        )
        self.loop = self.loops.loops[0]  # acceptor / boss loop
        self.streams = OneForOneStreamManager()
        self.rpc_handler = ShuffleOpenBlocksHandler(self.streams)
        self.context = TransportContext(
            transport.data_stack,
            rpc_handler=self.rpc_handler,
            stream_manager=self.streams,
            pipeline_hook=transport.pipeline_hook,
        )
        self.client_factory = TransportClientFactory(self.context, self.loops, self.node)
        self.server = None
        # Task slots: polling transports burn whole cores with spinning
        # selector threads (polling_tax_cores = total per executor).
        tax = min(transport.polling_tax_cores, n_io)
        effective = max(1, self.cores - tax)
        self.slots = Resource(sim.env, capacity=effective)
        self.bytes_fetched_remote = 0
        self.bytes_read_local = 0
        # Cleared by the recovery scheduler when this executor's node dies.
        self.alive = True
        # Cluster-wide scheduler metrics (get-or-create: all executors
        # aggregate into the same counters), mirroring Spark's
        # shuffle-read/task metrics. Job-server applications publish into
        # their own ``spark.app.<ns>.scheduler.*`` bundles instead.
        self._tm = sim.task_metrics(None)

    @property
    def address(self) -> SocketAddress:
        return SocketAddress(self.node.name, SHUFFLE_PORT_BASE + self.exec_id)

    def start(self) -> None:
        self.loops.start()
        self.server = self.context.create_server(
            self.loop, self.node, SHUFFLE_PORT_BASE + self.exec_id, child_group=self.loops
        )

    def stop(self) -> None:
        self.loops.stop()

    # -- the shuffle read client path ---------------------------------------
    def _get_client(self, remote: "SimExecutor") -> Generator:
        client = yield from self.client_factory.get_client(remote.address)
        if self.sim.transport.uses_mpi and "mpi_binding" not in client.channel.attributes:
            yield from self.sim.transport.establish(client.channel, self.endpoint)
        return client

    def _metrics_for(self, app: AppHandle | None) -> _TaskMetrics:
        return self._tm if app is None else self.sim.task_metrics(app.namespace)

    def fetch_shuffle(
        self,
        sources: list[tuple["SimExecutor", int, int]],
        trace_parent=None,
        app: AppHandle | None = None,
        rot: int | None = None,
    ) -> Generator:
        """Fetch ``(src, nbytes, n_blocks)`` from each source, windowed.

        Implements ShuffleBlockFetcherIterator's in-flight byte window:
        chunk requests are issued while the outstanding total stays under
        ``MAX_BYTES_IN_FLIGHT``; completions release window space.

        ``rot`` pins the fetch-request rotation explicitly (multi-tenant
        runs derive it from the application's RNG namespace so one job's
        fetch order never depends on how its neighbours interleave); the
        default keeps the historical per-executor sequence.
        """
        env = self.sim.env
        tm = self._metrics_for(app)
        owner = None if app is None else app.namespace
        if self.endpoint is not None and self.endpoint.proc.world.aborted:
            # The executor's MPI library is gone (MPI_ERRORS_ARE_FATAL):
            # no retry can help — fail the job, not the fetch.
            raise WorldAbortedError("MPI world aborted; executor cannot shuffle")
        # Open streams (one RPC per source executor).
        per_source: list[list[tuple[Any, int, int, int, int, "SimExecutor"]]] = []
        for src, nbytes, n_blocks in sources:
            if nbytes <= 0:
                continue
            try:
                client = yield from self._get_client(src)
                open_req = (
                    ("open_blocks", nbytes, n_blocks)
                    if owner is None
                    else ("open_blocks", nbytes, n_blocks, owner)
                )
                reply = yield client.send_rpc(
                    open_req, 64, trace_parent=trace_parent
                )
            except WorldAbortedError:
                raise
            except FetchFailedException:
                raise
            except _FETCHABLE_ERRORS as exc:
                raise FetchFailedException(
                    src.address, str(exc), exec_id=src.exec_id
                ) from exc
            stream_id, sizes, blocks = reply
            per_source.append(
                [
                    (client, stream_id, idx, size, blk, src)
                    for idx, (size, blk) in enumerate(zip(sizes, blocks))
                ]
            )
        # Interleave requests across sources, rotated per call — Spark
        # randomizes fetch-request order (ShuffleBlockFetcherIterator) so
        # synchronized reducers don't all hammer the same server at once.
        if rot is None:
            self._fetch_seq = getattr(self, "_fetch_seq", 0) + 1
            rot = self._fetch_seq + self.exec_id
        per_source = per_source[rot % len(per_source):] + per_source[: rot % len(per_source)] if per_source else []
        plan = [
            chunk
            for layer in itertools.zip_longest(*per_source)
            for chunk in layer
            if chunk is not None
        ]

        # future -> (size, blocks, source executor)
        pending: dict[Any, tuple[int, int, "SimExecutor"]] = {}
        in_flight = 0
        next_req = 0
        while next_req < len(plan) or pending:
            while next_req < len(plan) and (
                not pending or in_flight + plan[next_req][3] <= MAX_BYTES_IN_FLIGHT
            ):
                client, stream_id, idx, size, blk, src = plan[next_req]
                try:
                    future = client.fetch_chunk(
                        stream_id, idx, num_blocks=blk, trace_parent=trace_parent
                    )
                except WorldAbortedError:
                    raise
                except _FETCHABLE_ERRORS as exc:
                    raise FetchFailedException(
                        src.address, str(exc), exec_id=src.exec_id
                    ) from exc
                pending[future] = (size, blk, src)
                in_flight += size
                next_req += 1
            if not pending:
                break
            try:
                yield env.any_of(list(pending))
            except WorldAbortedError:
                raise
            except _FETCHABLE_ERRORS as exc:
                # Attribute the failure to the source whose future failed.
                src = next(
                    (s for f, (_, _, s) in pending.items() if f.triggered and not f.ok),
                    plan[0][5],
                )
                raise FetchFailedException(
                    src.address, str(exc), exec_id=src.exec_id
                ) from exc
            for future in [f for f in pending if f.triggered]:
                size, blk, src = pending.pop(future)
                in_flight -= size
                self.bytes_fetched_remote += size
                tm.remote_bytes.inc(size)
                if blk > 1:
                    yield env.timeout((blk - 1) * PER_BLOCK_CLIENT_S)

    def collective_fetch(
        self,
        exchange,
        peers: "list[SimExecutor]",
        remote_bytes: float,
        app: AppHandle | None = None,
    ) -> Generator:
        """Collective-transport stand-in for :meth:`fetch_shuffle`.

        Under ``mpi-coll`` the stage's whole traffic matrix moves in one
        alltoallv (:class:`~repro.transports.mpi_coll.CollectiveShuffleExchange`)
        started at the stage boundary; each reduce task just waits on the
        shared exchange here.  Exchange failures surface exactly like
        per-block fetch failures: a dead participant becomes a
        :class:`FetchFailedException` attributed to that executor (stage
        resubmission), a world abort stays fatal to the job.
        """
        tm = self._metrics_for(app)
        if self.endpoint is not None and self.endpoint.proc.world.aborted:
            raise WorldAbortedError("MPI world aborted; executor cannot shuffle")
        try:
            yield from exchange.wait()
        except WorldAbortedError:
            raise
        except _FETCHABLE_ERRORS as exc:
            idx = exchange.failed_member()
            src = peers[idx] if idx is not None and idx < len(peers) else None
            raise FetchFailedException(
                self.address if src is None else src.address,
                str(exc),
                exec_id=None if src is None else src.exec_id,
            ) from exc
        if remote_bytes > 0:
            self.bytes_fetched_remote += int(remote_bytes)
            tm.remote_bytes.inc(remote_bytes)

    # -- task runners -------------------------------------------------------------
    def _task_start(self, label: str):
        """Open a causal root for one task (None when tracing is off)."""
        causal = self.sim.env.causal
        if not causal.enabled:
            return None
        ctx = causal.mint()
        causal.event("task.start", ctx, task=label, exec=self.exec_id)
        return ctx

    def run_compute_task(
        self, seconds: float, label: str = "compute", app: AppHandle | None = None
    ) -> Generator:
        tm = self._metrics_for(app)
        gated = app is not None and app.gate is not None
        if gated:
            yield app.gate.request()
        req = self.slots.request()
        yield req
        try:
            ctx = self._task_start(label)
            with self.sim.env.tracer.span(
                label, cat="task", track=f"exec{self.exec_id}"
            ):
                compute = seconds * self.sim.transport.compute_inflation
                yield self.sim.env.timeout(TASK_SCHED_DELAY_S + compute)
                tm.compute.inc(compute)
                tm.tasks.inc()
            if ctx is not None:
                self.sim.env.causal.event(
                    "task.finish", ctx,
                    task=label, exec=self.exec_id, compute_s=compute,
                )
        finally:
            self.slots.release(req)
            if gated:
                app.gate.release()

    def run_write_task(
        self,
        seconds: float,
        write_bytes: float,
        label: str = "write",
        app: AppHandle | None = None,
    ) -> Generator:
        tm = self._metrics_for(app)
        gated = app is not None and app.gate is not None
        if gated:
            yield app.gate.request()
        req = self.slots.request()
        yield req
        try:
            ctx = self._task_start(label)
            with self.sim.env.tracer.span(
                label, cat="task", track=f"exec{self.exec_id}"
            ):
                compute = seconds * self.sim.transport.compute_inflation
                write = write_bytes / RAMDISK_WRITE_BPS
                yield self.sim.env.timeout(TASK_SCHED_DELAY_S + compute + write)
                tm.compute.inc(compute)
                tm.write.inc(write)
                tm.tasks.inc()
            if ctx is not None:
                self.sim.env.causal.event(
                    "task.finish", ctx,
                    task=label, exec=self.exec_id,
                    compute_s=compute, write_s=write,
                )
        finally:
            self.slots.release(req)
            if gated:
                app.gate.release()

    def run_read_task(
        self,
        fetch_bytes: np.ndarray,
        blocks: np.ndarray,
        combine_seconds: float,
        label: str = "read",
        app: AppHandle | None = None,
        peers: "list[SimExecutor] | None" = None,
        col: int | None = None,
        rot: int | None = None,
        exchange=None,
    ) -> Generator:
        """One reduce task: local read + windowed remote fetch + combine.

        ``peers``/``col`` define the shuffle geometry: ``fetch_bytes[i]``
        is the traffic sourced from ``peers[i]``, and column ``col`` is
        this task's local read. The defaults (whole cluster, own exec id)
        are the single-application geometry; a packed multi-tenant app
        passes its granted executor subset instead.

        ``exchange`` (collective transports only) is the stage boundary's
        shared :class:`CollectiveShuffleExchange`: instead of issuing
        per-block fetches, the task waits on it — its fetch-wait is the
        time until the stage's one alltoallv completes.
        """
        if peers is None:
            peers = self.sim.executors
        if col is None:
            col = self.exec_id
        tm = self._metrics_for(app)
        gated = app is not None and app.gate is not None
        if gated:
            yield app.gate.request()
        req = self.slots.request()
        yield req
        try:
            ctx = self._task_start(label)
            with self.sim.env.tracer.span(
                label, cat="task", track=f"exec{self.exec_id}"
            ) as span:
                yield self.sim.env.timeout(TASK_SCHED_DELAY_S)
                # Fetch wait mirrors Spark's shuffle-read "fetch wait time":
                # everything between scheduling and the first combine byte.
                t_fetch = self.sim.env.now
                # Local blocks: straight off the RAM disk.
                local = float(fetch_bytes[col])
                local_read = 0.0
                if local > 0:
                    self.bytes_read_local += int(local)
                    tm.local_bytes.inc(local)
                    local_read = local / RAMDISK_READ_BPS
                    yield self.sim.env.timeout(local_read)
                # Remote blocks: through the transport under test.
                if exchange is not None:
                    remote = float(
                        sum(fetch_bytes[i] for i in range(len(peers)) if i != col)
                    )
                    yield from self.collective_fetch(
                        exchange, peers, remote, app=app
                    )
                else:
                    sources = [
                        (src, int(fetch_bytes[i]), int(blocks[i]))
                        for i, src in enumerate(peers)
                        if i != col and fetch_bytes[i] > 0
                    ]
                    yield from self.fetch_shuffle(
                        sources, trace_parent=ctx, app=app, rot=rot
                    )
                fetch_wait = self.sim.env.now - t_fetch
                tm.fetch_wait.inc(fetch_wait)
                tm.h_fetch_wait.observe(fetch_wait)
                combine = combine_seconds * self.sim.transport.compute_inflation
                yield self.sim.env.timeout(combine)
                tm.combine.inc(combine)
                tm.tasks.inc()
                span.annotate(fetch_wait_s=fetch_wait, combine_s=combine)
            if ctx is not None:
                self.sim.env.causal.event(
                    "task.finish", ctx,
                    task=label, exec=self.exec_id,
                    fetch_wait_s=fetch_wait, combine_s=combine,
                    local_s=local_read,
                )
        finally:
            self.slots.release(req)
            if gated:
                app.gate.release()


@dataclass
class RunResult:
    """Timing breakdown of one profile execution."""

    workload: str
    transport: str
    system: str
    n_workers: int
    total_cores: int
    stage_seconds: dict[str, float] = field(default_factory=dict)
    launch_seconds: float = 0.0
    # End-of-run metrics snapshot; populated when the cluster ran with
    # observability enabled (``spark.repro.obs.enabled``).
    metrics: "MetricsSnapshot | None" = None
    # Causal flight recording; populated under ``spark.repro.obs.causal``.
    # The recorder is env-free, so results (and their flight logs) survive
    # the pickling round-trip through the parallel harness workers.
    flight: "FlightRecorder | None" = None

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def shuffle_read_seconds(self) -> float:
        """Time of the shuffle-read stage (the paper's last Job*-ResultStage)."""
        reads = [
            secs
            for label, secs in self.stage_seconds.items()
            if "ResultStage" in label or label.endswith("read")
        ]
        return reads[-1] if reads else 0.0


class SparkSimCluster:
    """A deployed (simulated) Spark cluster bound to one transport."""

    def __init__(
        self,
        system: SystemConfig,
        n_workers: int,
        transport_name: str,
        cores_per_executor: int | None = None,
        io_threads: int = 8,
        seed: int = 0,
        mpi_fault_mode: str = "abort",
        obs_enabled: bool = False,
        obs_trace: bool = False,
        obs_causal: bool = False,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.system = system
        self.n_workers = n_workers
        self.io_threads = io_threads
        self.seed = int(seed)
        self.mpi_fault_mode = mpi_fault_mode
        self.obs_enabled = obs_enabled or obs_trace or obs_causal
        self.obs_trace = obs_trace
        self.obs_causal = obs_causal
        self.env = SimEngine(seed=seed)
        if obs_trace:
            from repro.obs.tracer import Tracer

            self.env.tracer = Tracer(self.env)
        if obs_causal:
            from repro.obs.causal import CausalTracer

            self.env.causal = CausalTracer(self.env)
        # workers on nodes [0, W); master on node W; driver on node W+1.
        self.cluster = SimCluster(
            self.env,
            system.fabric,
            n_nodes=n_workers + 2,
            cores_per_node=system.cores_per_node,
        )
        self.transport = make_transport(
            transport_name, self.env, self.cluster, loaded=True,
            fault_mode=mpi_fault_mode,
        )
        self.cores_per_executor = cores_per_executor or system.threads_per_node
        self.executors: list[SimExecutor] = []
        self.launch_seconds = 0.0
        self._launched = False
        self._shutdown = False
        # Collective shuffle (mpi-coll): each stage boundary's exchange
        # draws a cluster-unique matching tag from this counter so
        # concurrent exchanges (multi-tenant apps, resubmitted stage
        # attempts) can never cross-match on the shared DPM communicator.
        self._coll_tag_seq = itertools.count()
        # Multi-tenant state: registered applications and their metric
        # bundles (the anonymous bundle keeps the legacy names).
        self.apps: dict[int, AppHandle] = {}
        self._task_metric_bundles: dict[str | None, _TaskMetrics] = {}
        # Attribute cache traffic to this cluster: the estimate_size shape
        # memo and the sample-trace cache keep process-global tallies, so
        # snapshot hooks publish deltas since cluster construction under
        # one ``cache.*`` namespace (surfaced via RunResult.metrics).
        from repro.harness.runcache import run_cache_stats
        from repro.harness.tracecache import trace_cache_stats
        from repro.util.serialization import size_cache_stats

        m = self.env.metrics
        c_size_hits = m.counter("cache.size.hits")
        c_size_misses = m.counter("cache.size.misses")
        base_hits, base_misses = size_cache_stats()
        trace_counters = {
            "hits": m.counter("cache.trace.hits"),
            "misses": m.counter("cache.trace.misses"),
            "sample_runs": m.counter("cache.trace.sample_runs"),
            "bytes_read": m.counter("cache.trace.bytes_read"),
            "bytes_written": m.counter("cache.trace.bytes_written"),
        }
        trace_base = trace_cache_stats()
        # The run cache wraps whole cell simulations, so its traffic
        # happens *around* cluster lifetimes (a warm cell never builds a
        # cluster at all). Deltas since construction would always be
        # zero; publish process-lifetime absolutes instead. Like
        # cache.trace.*, these depend on cache temperature and are
        # excluded from the figure-row metric census.
        run_counters = {
            "hits": m.counter("cache.run.hits"),
            "misses": m.counter("cache.run.misses"),
            "cell_runs": m.counter("cache.run.cell_runs"),
            "bytes_read": m.counter("cache.run.bytes_read"),
            "bytes_written": m.counter("cache.run.bytes_written"),
        }

        def _publish_cache_stats() -> None:
            hits, misses = size_cache_stats()
            c_size_hits.value = float(hits - base_hits)
            c_size_misses.value = float(misses - base_misses)
            stats = trace_cache_stats()
            stats["hits"] = stats["hits_mem"] + stats["hits_disk"]
            base = dict(trace_base)
            base["hits"] = base["hits_mem"] + base["hits_disk"]
            for name, counter in trace_counters.items():
                counter.value = float(stats[name] - base[name])
            rstats = run_cache_stats()
            rstats["hits"] = rstats["hits_mem"] + rstats["hits_disk"]
            for name, counter in run_counters.items():
                counter.value = float(rstats[name])

        m.on_snapshot(_publish_cache_stats)

    @classmethod
    def from_conf(
        cls, system: SystemConfig, n_workers: int, conf, **overrides
    ) -> "SparkSimCluster":
        """Build a cluster from a :class:`~repro.spark.conf.SparkConf`.

        Reads the transport, seed, MPI fault mode and the observability
        switches (``spark.repro.obs.enabled`` / ``.trace`` / ``.causal``);
        keyword overrides win over conf values.
        """
        from repro.obs import causal_from_conf, obs_from_conf

        obs_enabled, obs_trace = obs_from_conf(conf)
        kwargs: dict[str, Any] = dict(
            transport_name=str(conf.get("spark.repro.transport", "nio")),
            seed=conf.get_int("spark.repro.seed", 0),
            mpi_fault_mode=str(conf.get("spark.repro.mpi.faultMode", "abort")),
            obs_enabled=obs_enabled,
            obs_trace=obs_trace,
            obs_causal=causal_from_conf(conf),
        )
        kwargs.update(overrides)
        return cls(system, n_workers, **kwargs)

    # -- cluster bring-up ---------------------------------------------------------
    def launch(self) -> None:
        """Bring the cluster up (Fig-3 flow for the MPI transports)."""
        if self._launched:
            raise RuntimeError("cluster already launched")
        t0 = self.env.now
        if self.transport.uses_mpi:
            self._launch_with_mpi()
        else:
            for i in range(self.n_workers):
                self.executors.append(SimExecutor(self, i, i, None))
        for ex in self.executors:
            ex.start()
        self.env.run(until=self.env.now + 0.5)  # let servers/loops settle
        self.launch_seconds = self.env.now - t0
        self._launched = True

    def _launch_with_mpi(self) -> None:
        """Paper Sec. V: wrapper ranks, allgather of specs, DPM spawn."""
        world = self.transport.mpi_world
        assert world is not None
        W = self.n_workers
        executor_procs: dict[int, Any] = {}
        done = self.env.event()
        parents_ready = {"count": 0}

        def executor_main(proc):
            # Executors idle as MPI ranks; their matching engines serve the
            # Netty MPI transport.
            executor_procs[len(executor_procs)] = proc
            yield proc.env.timeout(0)

        def wrapper_main(proc):
            comm = proc.comm_world
            rank = comm.rank
            if rank < W:
                my_spec = SpawnSpec(main=executor_main, node=rank, count=1, name="executor")
            else:
                my_spec = None  # master (rank W) and driver (rank W+1)
            # "an MPI_allgather was used across the workers to gather all
            # the different arguments used for launching the executors"
            all_specs = yield from comm.allgather(my_spec)
            specs = [s for s in all_specs if s is not None]
            intercomm = yield from comm.spawn_multiple(
                specs if rank == 0 else None, root=0
            )
            proc.spawn_intercomm = intercomm
            parents_ready["count"] += 1
            if parents_ready["count"] == W + 2 and not done.triggered:
                done.succeed()

        specs = [RankSpec(main=wrapper_main, node=i, name="worker") for i in range(W)]
        specs.append(RankSpec(main=wrapper_main, node=W, name="master"))
        specs.append(RankSpec(main=wrapper_main, node=W + 1, name="driver"))
        world.launch(specs, comm_name="MPI_COMM_WORLD")
        self.env.run(until=done)

        # Executor gid order == spawn order == worker rank order.
        procs = sorted(executor_procs.values(), key=lambda p: p.gid)
        if len(procs) != W:
            raise RuntimeError(f"expected {W} executors, got {len(procs)}")
        for i, proc in enumerate(procs):
            self.executors.append(SimExecutor(self, i, i, MpiEndpoint(proc)))

    # -- multi-tenant surface -----------------------------------------------------
    def task_metrics(self, namespace: str | None) -> _TaskMetrics:
        """The task-metric bundle for one app namespace (None = legacy)."""
        bundle = self._task_metric_bundles.get(namespace)
        if bundle is None:
            prefix = (
                "spark.scheduler"
                if namespace is None
                else f"spark.app.{namespace}.scheduler"
            )
            bundle = _TaskMetrics(self.env.metrics, prefix)
            self._task_metric_bundles[namespace] = bundle
        return bundle

    @property
    def total_task_slots(self) -> int:
        """Sum of effective (post-polling-tax) task slots across executors."""
        if not self._launched:
            self.launch()
        return sum(ex.slots.capacity for ex in self.executors)

    def register_app(
        self,
        app_id: int,
        name: str | None = None,
        gate: Any | None = None,
        executor_ids: tuple[int, ...] | None = None,
    ) -> AppHandle:
        """Admit an application namespace onto this cluster.

        The handle's seed is derived from ``(cluster seed, app id)`` —
        nothing else — so every per-app stochastic stream replays
        identically regardless of which other applications share the
        cluster or how their events interleave.
        """
        from repro.util.rng import derive_seed

        if app_id in self.apps:
            raise ValueError(f"app id {app_id} already registered")
        app = AppHandle(
            app_id=app_id,
            name=name or f"app{app_id}",
            seed=derive_seed(self.seed, "app", app_id),
            namespace=f"app{app_id}",
            gate=gate,
            executor_ids=executor_ids,
        )
        self.apps[app_id] = app
        return app

    def app_executors(self, app: AppHandle | None) -> list[SimExecutor]:
        if app is None or app.executor_ids is None:
            return self.executors
        return [self.executors[i] for i in app.executor_ids]

    def release_app(self, app: AppHandle) -> None:
        """Sweep an application's executor-side shuffle state (streams)."""
        for ex in self.executors:
            ex.streams.release_owner(app.namespace)
        self.apps.pop(app.app_id, None)

    def run_application(
        self, profile: WorkloadProfile, app: AppHandle
    ) -> Generator:
        """Run ``profile`` as one tenant application (a simulation process).

        Unlike :meth:`run_profile` — which *drives* the engine and
        therefore owns the whole cluster — this is a generator to be
        wrapped in ``env.process``: many applications can execute
        concurrently, contending for executor slots under their
        ``AppHandle`` grants. Returns the app's ``{stage label: seconds}``
        dict; stream state is swept on exit (normal or aborted).
        """
        if self._shutdown:
            raise RuntimeError("cluster is shut down")
        if not self._launched:
            raise RuntimeError("launch() the cluster before running applications")
        n_exec = len(self.app_executors(app))
        if profile.n_executors != n_exec:
            raise ValueError(
                f"profile built for {profile.n_executors} executors, "
                f"app {app.app_id} granted {n_exec}"
            )
        env = self.env
        causal = env.causal
        stage_seconds: dict[str, float] = {}
        try:
            for stage in profile.stages:
                t0 = env.now
                causal.event(
                    "stage.start", None,
                    stage=f"{app.name}:{stage.label}", n_tasks=stage.n_tasks,
                )
                tasks = self._spawn_stage_tasks(stage, app=app)
                yield env.all_of(tasks)
                stage_seconds[stage.label] = env.now - t0
                causal.event(
                    "stage.finish", None,
                    stage=f"{app.name}:{stage.label}",
                    seconds=stage_seconds[stage.label],
                )
        finally:
            self.release_app(app)
        return stage_seconds

    # -- profile execution -------------------------------------------------------
    def run_profile(self, profile: WorkloadProfile) -> RunResult:
        if not self._launched:
            self.launch()
        if profile.n_executors != self.n_workers:
            raise ValueError(
                f"profile built for {profile.n_executors} executors, "
                f"cluster has {self.n_workers}"
            )
        result = RunResult(
            workload=profile.name,
            transport=self.transport.name,
            system=self.system.name,
            n_workers=self.n_workers,
            total_cores=self.n_workers * self.cores_per_executor,
            launch_seconds=self.launch_seconds,
        )
        causal = self.env.causal
        if causal.enabled:
            # Self-describing trace header: everything the what-if replay
            # engine needs to rebuild its model from an exported JSONL log
            # (repro.obs.whatif) without the live cluster object, plus the
            # provenance keys the diff engine (repro.obs.diff) aligns and
            # sanity-checks two recordings on (seed, stage/task census).
            mpi_world = getattr(self.transport, "mpi_world", None)
            causal.event(
                "run.meta", None,
                workload=profile.name,
                transport=self.transport.name,
                system=self.system.name,
                n_workers=self.n_workers,
                cores_per_executor=self.cores_per_executor,
                slots_per_executor=self.executors[0].slots.capacity,
                rendezvous_threshold=(
                    0 if mpi_world is None else int(mpi_world.model.rendezvous_threshold)
                ),
                seed=self.seed,
                n_stages=len(profile.stages),
                n_tasks=sum(s.n_tasks for s in profile.stages),
                compute_inflation=float(self.transport.compute_inflation),
            )
        for stage in profile.stages:
            t0 = self.env.now
            causal.event("stage.start", None, stage=stage.label, n_tasks=stage.n_tasks)
            with self.env.tracer.span(
                stage.label, cat="stage", track="driver", n_tasks=stage.n_tasks
            ):
                tasks = self._spawn_stage_tasks(stage)
                finished = self.env.all_of(tasks)
                self.env.run(until=finished)
            result.stage_seconds[stage.label] = self.env.now - t0
            causal.event(
                "stage.finish", None,
                stage=stage.label, seconds=result.stage_seconds[stage.label],
            )
        if self.obs_enabled:
            result.metrics = self.env.metrics.snapshot()
        if causal.enabled:
            result.flight = causal.flight
        return result

    def start_collective_exchange(
        self,
        stage,
        executors: "list[SimExecutor]",
        app: AppHandle | None = None,
        tasks=None,
        placement: dict[int, int] | None = None,
    ):
        """One stage boundary's alltoallv exchange (collective transports).

        Aggregates the :class:`ShuffleReadStage` fetch matrix over its
        reduce tasks into an executor-pair byte matrix and launches a
        :class:`~repro.transports.mpi_coll.CollectiveShuffleExchange`
        over the executors' DPM communicator.  ``tasks``/``placement``
        restrict and re-home the aggregation (the resilient scheduler's
        per-attempt view: only still-pending tasks, moved onto
        survivors); the defaults cover every task at its preferred
        ``t % n_exec`` executor.  The matching tag is cluster-unique so
        concurrent exchanges never cross-match.
        """
        n = len(executors)
        totals = np.zeros((n, n), dtype=float)
        task_ids = range(stage.n_tasks) if tasks is None else tasks
        for t in task_ids:
            d = (t % n) if placement is None else placement[t]
            totals[d] += stage.fetch_bytes[t]
        np.fill_diagonal(totals, 0.0)  # local reads never ride the wire
        label = ("" if app is None else f"{app.name}:") + stage.label
        # User tags live in [0, MAX_TAG); collective handles draw small
        # sequence numbers, so exchange tags start high to stay disjoint.
        tag = (_COLL_TAG_BASE + next(self._coll_tag_seq)) % (1 << 24)
        members = [
            (ex.endpoint.proc.comm_world.rank, ex.endpoint.proc)
            for ex in executors
        ]
        return self.transport.start_exchange(label, members, totals, tag)

    def _spawn_stage_tasks(self, stage, app: AppHandle | None = None) -> list:
        from repro.util.rng import derive_seed

        procs = []
        executors = self.app_executors(app)
        n_exec = len(executors)
        prefix = "" if app is None else f"{app.name}:"
        exchange = None
        if isinstance(stage, ShuffleReadStage) and getattr(
            self.transport, "collective_shuffle", False
        ):
            # The fetch phase degenerates into one collective per stage
            # boundary: all map→reduce bytes start moving now, and every
            # reduce task below just waits on this shared exchange.
            exchange = self.start_collective_exchange(stage, executors, app)
        for t in range(stage.n_tasks):
            ex = executors[t % n_exec]
            task_label = f"{prefix}{stage.label}-task{t}"
            if isinstance(stage, ComputeStage):
                gen = ex.run_compute_task(
                    float(stage.seconds_per_task[t]), label=task_label, app=app
                )
            elif isinstance(stage, ShuffleWriteStage):
                gen = ex.run_write_task(
                    float(stage.seconds_per_task[t]),
                    float(stage.write_bytes_per_task[t]),
                    label=task_label,
                    app=app,
                )
            elif isinstance(stage, ShuffleReadStage):
                # Per-app fetch rotation: a pure function of (app seed,
                # stage, task), never of a shared mutable counter — one
                # tenant's fetch order is interleaving-independent.
                rot = (
                    None
                    if app is None
                    else derive_seed(app.seed, "fetch", stage.label, t) % 65536
                )
                gen = ex.run_read_task(
                    stage.fetch_bytes[t],
                    stage.blocks[t],
                    float(stage.combine_seconds_per_task[t]),
                    label=task_label,
                    app=app,
                    peers=executors,
                    col=t % n_exec,
                    rot=rot,
                    exchange=exchange,
                )
            else:
                raise TypeError(f"unknown stage type {type(stage)}")
            procs.append(self.env.process(gen, name=task_label))
        return procs

    def shutdown(self) -> None:
        """Tear the cluster down; idempotent and safe mid-application.

        Applications still in flight are abandoned where they stand (the
        engine simply stops being driven); their executor-side stream
        state is invalidated and any open causal spans are tombstoned, so
        no flight recording ends with a dangling send. A second call is a
        no-op.
        """
        if self._shutdown:
            return
        self._shutdown = True
        for ex in self.executors:
            ex.stop()
        if self.apps:
            # In-flight tenants: their future fetches must fail fast, not
            # hang on streams nobody will serve.
            for ex in self.executors:
                ex.streams.invalidate_all("cluster shutdown")
            self.apps.clear()
        # Final causal sweep: spans still open here were sent to endpoints
        # that died without a channel teardown (or were in flight when an
        # abort unwound the run) — tombstone them so no trace ends with a
        # dangling send.  Clean runs have nothing open and record nothing.
        causal = self.env.causal
        if causal.enabled and causal.flight.open_spans():
            causal.flight.close_all(
                self.env.now, "cluster shutdown", terminal="run.end"
            )
