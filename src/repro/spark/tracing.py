"""Execution traces: the bridge from real runs to the performance model.

The local backend records, for every stage it executes, the record counts
and serialized byte volumes flowing through it — in particular the shuffle
traffic matrix (bytes from map partition *i* to reduce partition *j*).
The simulation harness scales these traces to the paper's nominal data
sizes and replays them on the simulated cluster (trace-driven simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass
class StageTrace:
    """What one stage did, measured at sample scale."""

    stage_id: int
    label: str  # e.g. "Job1-ShuffleMapStage"
    kind: str  # "ShuffleMapStage" | "ResultStage"
    num_tasks: int
    records_in: list[int] = field(default_factory=list)  # per task
    records_out: list[int] = field(default_factory=list)  # per task
    bytes_out: list[int] = field(default_factory=list)  # per task
    shuffle_id: int | None = None
    # ShuffleMapStage: matrix[map_id][reduce_id] = serialized bytes written.
    shuffle_matrix: np.ndarray | None = None
    shuffle_records: np.ndarray | None = None
    # ResultStage: bytes fetched per (reduce_id, source map_id).
    fetch_matrix: np.ndarray | None = None

    @property
    def total_shuffle_bytes(self) -> int:
        if self.shuffle_matrix is None:
            return 0
        return int(self.shuffle_matrix.sum())

    @property
    def total_records_in(self) -> int:
        return sum(self.records_in)


@dataclass
class JobTrace:
    """All stages of one job, in execution order."""

    job_id: int
    description: str
    stages: list[StageTrace] = field(default_factory=list)

    def stage_by_label(self, label: str) -> StageTrace:
        for st in self.stages:
            if st.label == label:
                return st
        raise KeyError(f"no stage labeled {label!r} in job {self.job_id}")


@dataclass(frozen=True)
class SampleTrace:
    """Frozen, picklable result of one sample-scale execution.

    This is the artifact the trace cache stores: everything
    ``build_profile`` consumes from a sample run (stage structure, shuffle
    matrices, record/byte counts), decoupled from the live SparkContext
    that produced it. ``sample_params`` records the exact parameters the
    sample ran with, so cached artifacts are self-describing.
    """

    workload: str
    sample_params: tuple[tuple[str, Any], ...]
    stages: tuple[StageTrace, ...]
    schema: str = "sample-trace/1"

    @classmethod
    def from_recorder(
        cls, recorder: "TraceRecorder", workload: str, sample_params: dict[str, Any]
    ) -> "SampleTrace":
        return cls(
            workload=workload,
            sample_params=tuple(sorted(sample_params.items())),
            stages=tuple(recorder.all_stages()),
        )

    def find_stage(self, label_suffix: str) -> StageTrace:
        """First stage whose label ends with ``label_suffix``."""
        for st in self.stages:
            if st.label.endswith(label_suffix):
                return st
        raise KeyError(f"no stage label ending in {label_suffix!r}")

    @property
    def total_records(self) -> int:
        return sum(st.total_records_in for st in self.stages)


class TraceRecorder:
    """Accumulates job traces during local execution."""

    def __init__(self) -> None:
        self.jobs: list[JobTrace] = []
        self.enabled = True

    def begin_job(self, job_id: int, description: str) -> JobTrace:
        trace = JobTrace(job_id=job_id, description=description)
        self.jobs.append(trace)
        return trace

    def find_stage(self, label_suffix: str) -> StageTrace:
        """First stage whose label ends with ``label_suffix`` across jobs."""
        for job in self.jobs:
            for st in job.stages:
                if st.label.endswith(label_suffix):
                    return st
        raise KeyError(f"no stage label ending in {label_suffix!r}")

    def all_stages(self) -> list[StageTrace]:
        return [st for job in self.jobs for st in job.stages]
