"""MPI4Spark reproduction (CLUSTER 2022).

A from-scratch Python implementation of "Spark Meets MPI: Towards
High-Performance Communication Framework for Spark using MPI" and every
substrate it depends on:

* :mod:`repro.simnet`  — discrete-event cluster/network simulator,
* :mod:`repro.mpi`     — an MPI runtime (pt2pt, collectives, DPM),
* :mod:`repro.netty`   — an event-driven network framework (Netty),
* :mod:`repro.spark`   — a working mini-Spark (RDDs, DAG, shuffle,
  network layer, cluster deployment),
* :mod:`repro.core`    — the paper's contribution: the MPI-based Netty
  transport (Basic and Optimized designs), channel-rank mapping, DPM launch,
* :mod:`repro.transports` — the evaluation matrix (NIO/RDMA/MPI-Basic/MPI-Opt),
* :mod:`repro.workloads`  — OHB and Intel HiBench workloads,
* :mod:`repro.harness`    — per-figure experiment drivers.

Quickstart::

    from repro.spark import SparkContext
    sc = SparkContext()
    sc.range(100).map(lambda x: (x % 10, x)).reduce_by_key(lambda a, b: a + b).collect()
"""

__version__ = "1.0.0"
