"""Message envelopes and wire protocol selection (eager vs rendezvous)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any

from repro.mpi.status import ANY_SOURCE, ANY_TAG

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.events import Event

# Size of a rendezvous Ready-To-Send control message on the wire.
RTS_BYTES = 64


class Protocol(Enum):
    """How the payload moves."""

    EAGER = "eager"  # payload piggybacks on the envelope
    RENDEZVOUS = "rndv"  # envelope is an RTS; payload moves after match


_seq = itertools.count(1)


@dataclass
class Envelope:
    """One in-flight point-to-point message.

    ``context_id`` scopes matching to a communicator (and, for collectives,
    to the communicator's collective context), exactly as MPI requires.
    ``src_rank`` is the rank *within that communicator's matching group*.
    """

    src_gid: int  # globally unique process id (routing)
    src_rank: int  # rank as visible to the receiver's matching
    dst_gid: int
    context_id: int
    tag: int
    payload: Any
    nbytes: int
    protocol: Protocol
    send_done: "Event | None" = None  # rendezvous: triggered when transfer completes
    seq: int = field(default_factory=lambda: next(_seq))
    # Causal trace context (repro.obs.causal): in-memory only, not part of
    # the wire size or matching identity.
    trace_ctx: Any = field(default=None, compare=False, repr=False)

    def matches(self, source: int, tag: int, context_id: int) -> bool:
        """Does this envelope satisfy a recv/probe spec?"""
        if context_id != self.context_id:
            return False
        if source != ANY_SOURCE and source != self.src_rank:
            return False
        if tag != ANY_TAG and tag != self.tag:
            return False
        return True

    def wire_bytes(self) -> int:
        """Bytes the envelope itself occupies on the wire."""
        return self.nbytes if self.protocol is Protocol.EAGER else RTS_BYTES
