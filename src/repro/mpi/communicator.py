"""Groups and communicators (intra- and inter-).

A :class:`Comm` here is a per-process *handle* onto a shared
:class:`CommDescriptor` — mirroring real MPI, where every process holds its
own handle to a communicator whose context id is agreed cluster-wide.
Matching is scoped by the descriptor's context ids: one for point-to-point
traffic, one for collectives, so user sends can never be confused with
collective internals (this is how real MPI implementations do it).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Generator, Sequence

from repro.mpi import collectives as _coll
from repro.mpi.errors import CommError, TagError
from repro.mpi.request import Request
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.runtime import MPIProcess

MAX_TAG = 1 << 24  # user tags live in [0, MAX_TAG)


class Group:
    """An ordered set of process gids; rank = index."""

    def __init__(self, gids: Sequence[int]) -> None:
        if len(set(gids)) != len(gids):
            raise CommError(f"duplicate gids in group: {gids}")
        self._gids = tuple(gids)
        self._rank_of = {gid: i for i, gid in enumerate(self._gids)}

    @property
    def size(self) -> int:
        return len(self._gids)

    def gid_of(self, rank: int) -> int:
        if not 0 <= rank < len(self._gids):
            raise CommError(f"rank {rank} out of range for group of {len(self._gids)}")
        return self._gids[rank]

    def rank_of(self, gid: int) -> int:
        try:
            return self._rank_of[gid]
        except KeyError:
            raise CommError(f"gid {gid} not in group") from None

    def __contains__(self, gid: int) -> bool:
        return gid in self._rank_of

    def __iter__(self):
        return iter(self._gids)


class CommDescriptor:
    """Cluster-wide identity of a communicator (shared across handles)."""

    _ctx_alloc = itertools.count(100, step=2)

    def __init__(
        self,
        name: str,
        local_group: Group,
        remote_group: Group | None = None,
        ctx: tuple[int, int] | None = None,
    ) -> None:
        self.name = name
        self.local_group = local_group
        self.remote_group = remote_group  # None for intracommunicators
        if ctx is None:
            self.ctx_pt2pt = next(CommDescriptor._ctx_alloc)
            self.ctx_coll = self.ctx_pt2pt + 1
        else:
            # Reconstructing a descriptor whose identity was agreed
            # elsewhere (DPM intercomm establishment).
            self.ctx_pt2pt, self.ctx_coll = ctx

    def mirrored(self) -> "CommDescriptor":
        """The same intercommunicator seen from the other group's side."""
        if self.remote_group is None:
            raise CommError("mirrored() only applies to intercommunicators")
        return CommDescriptor(
            self.name,
            local_group=self.remote_group,
            remote_group=self.local_group,
            ctx=(self.ctx_pt2pt, self.ctx_coll),
        )

    @property
    def is_inter(self) -> bool:
        return self.remote_group is not None


class Comm:
    """Per-process communicator handle. Base for intra/inter variants."""

    def __init__(self, proc: "MPIProcess", desc: CommDescriptor) -> None:
        self.proc = proc
        self.desc = desc
        self._coll_seq = 0  # collective-call counter (same order on all ranks)
        # Let the failure machinery map (rank, context) back to a gid.
        proc._register_comm(desc)

    # -- identity ----------------------------------------------------------
    @property
    def name(self) -> str:
        return self.desc.name

    @property
    def rank(self) -> int:
        return self.desc.local_group.rank_of(self.proc.gid)

    @property
    def size(self) -> int:
        return self.desc.local_group.size

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    def _dest_group(self) -> Group:
        """Group that ``dest``/``source`` ranks refer to."""
        return self.desc.remote_group or self.desc.local_group

    def _check_tag(self, tag: int) -> None:
        if not 0 <= tag < MAX_TAG:
            raise TagError(f"tag {tag} outside [0, {MAX_TAG})")

    # -- point-to-point ----------------------------------------------------
    def send(
        self, obj: Any, dest: int, tag: int = 0, nbytes: int | None = None
    ) -> Generator:
        """Blocking send (generator). ``nbytes`` overrides the size model."""
        self._check_tag(tag)
        dst_gid = self._dest_group().gid_of(dest)
        yield from self.proc._send(
            dst_gid, self.rank, self.desc.ctx_pt2pt, tag, obj, nbytes
        )

    def isend(
        self, obj: Any, dest: int, tag: int = 0, nbytes: int | None = None
    ) -> Request:
        """Nonblocking send; returns a :class:`Request`."""
        self._check_tag(tag)
        dst_gid = self._dest_group().gid_of(dest)
        return self.proc._isend(
            dst_gid, self.rank, self.desc.ctx_pt2pt, tag, obj, nbytes
        )

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
    ) -> Generator:
        """Blocking receive (generator) returning the payload."""
        if tag != ANY_TAG:
            self._check_tag(tag)
        req = self.irecv(source, tag)
        payload = yield from req.wait(status)
        return payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive."""
        if tag != ANY_TAG:
            self._check_tag(tag)
        return self.proc._irecv(source, tag, self.desc.ctx_pt2pt)

    def iprobe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
    ) -> bool:
        """Non-blocking probe (MPI_Iprobe) — the Basic design's busy call."""
        return self.proc.matching.iprobe(source, tag, self.desc.ctx_pt2pt, status)

    def probe(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
    ) -> Generator:
        """Blocking probe (generator); fills ``status`` without consuming."""
        env_msg = yield self.proc.matching.probe_event(
            source, tag, self.desc.ctx_pt2pt
        )
        if env_msg is None:
            # Woken by a failure sweep, not a message (see wake_probes_empty).
            from repro.mpi.errors import RankDeadError

            raise RankDeadError(f"probe on {self.name} interrupted by rank failure")
        if status is not None:
            status.source = env_msg.src_rank
            status.tag = env_msg.tag
            status.nbytes = env_msg.nbytes
        return True

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        recv_source: int = ANY_SOURCE,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
        status: Status | None = None,
    ) -> Generator:
        """Combined send+recv without deadlock (MPI_Sendrecv)."""
        rreq = self.irecv(recv_source, recv_tag)
        yield from self.send(obj, dest, send_tag)
        payload = yield from rreq.wait(status)
        return payload

    # -- collective internals (shared by intra/inter) -----------------------
    def _next_coll_tag(self) -> int:
        self._coll_seq += 1
        return self._coll_seq % MAX_TAG

    def _coll_send(
        self, obj: Any, dest: int, tag: int, nbytes: int | None = None
    ) -> Generator:
        dst_gid = self._dest_group().gid_of(dest)
        yield from self.proc._send(
            dst_gid, self.rank, self.desc.ctx_coll, tag, obj, nbytes
        )

    def _coll_isend(self, obj: Any, dest: int, tag: int) -> Request:
        dst_gid = self._dest_group().gid_of(dest)
        return self.proc._isend(dst_gid, self.rank, self.desc.ctx_coll, tag, obj, None)

    def _coll_recv(self, source: int, tag: int) -> Generator:
        req = self.proc._irecv(source, tag, self.desc.ctx_coll)
        payload = yield from req.wait()
        return payload


class Intracomm(Comm):
    """Communicator over a single group (e.g. MPI_COMM_WORLD, DPM_COMM)."""

    # -- collectives (all generators) ---------------------------------------
    def barrier(self) -> Generator:
        yield from _coll.barrier(self)

    def bcast(self, obj: Any, root: int = 0) -> Generator:
        result = yield from _coll.bcast(self, obj, root)
        return result

    def gather(self, obj: Any, root: int = 0) -> Generator:
        result = yield from _coll.gather(self, obj, root)
        return result

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Generator:
        result = yield from _coll.scatter(self, objs, root)
        return result

    def allgather(self, obj: Any) -> Generator:
        result = yield from _coll.allgather(self, obj)
        return result

    def reduce(self, obj: Any, op=None, root: int = 0) -> Generator:
        result = yield from _coll.reduce(self, obj, op, root)
        return result

    def allreduce(self, obj: Any, op=None) -> Generator:
        result = yield from _coll.allreduce(self, obj, op)
        return result

    def alltoall(self, objs: Sequence[Any]) -> Generator:
        result = yield from _coll.alltoall(self, objs)
        return result

    def alltoallv(
        self,
        objs: Sequence[Any],
        nbytes: Sequence[int] | None = None,
        tag: int | None = None,
        trace_parent: Any = None,
        ranks: Sequence[int] | None = None,
    ) -> Generator:
        """Variable-sized alltoall; see :func:`repro.mpi.collectives.alltoallv`."""
        result = yield from _coll.alltoallv(
            self, objs, nbytes=nbytes, tag=tag, trace_parent=trace_parent,
            ranks=ranks,
        )
        return result

    def spawn_multiple(self, specs, root: int = 0) -> Generator:
        """Launch child processes with DPM (MPI_Comm_spawn_multiple).

        Collective over this communicator; returns the parent-side
        :class:`Intercomm`. See :mod:`repro.mpi.dpm`.
        """
        from repro.mpi import dpm

        intercomm = yield from dpm.spawn_multiple(self, specs, root)
        return intercomm

    def spawn(self, spec, root: int = 0) -> Generator:
        """Single-spec convenience wrapper over :meth:`spawn_multiple`."""
        intercomm = yield from self.spawn_multiple([spec], root)
        return intercomm


class Intercomm(Comm):
    """Communicator bridging two disjoint groups (DPM parent/child).

    ``dest``/``source`` ranks refer to the *remote* group; ``rank``/``size``
    to the local group — matching the MPI standard.
    """

    @property
    def remote_size(self) -> int:
        assert self.desc.remote_group is not None
        return self.desc.remote_group.size

    def Get_remote_size(self) -> int:
        return self.remote_size

    def barrier(self) -> Generator:
        yield from _coll.inter_barrier(self)

    def bcast_local_root(self, obj: Any, root_rank: int, is_root_group: bool) -> Generator:
        """Broadcast from one rank of the root group to every remote rank."""
        result = yield from _coll.inter_bcast(self, obj, root_rank, is_root_group)
        return result
