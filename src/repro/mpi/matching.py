"""Receive-side message matching: posted-receive and unexpected queues.

This implements the MPI matching rules the paper's designs depend on:

* a receive matches the **earliest-arrived** envelope satisfying its
  ``(source, tag, context)`` spec (with wildcards),
* envelopes from the same sender on the same communicator are matched in
  send order (non-overtaking — guaranteed upstream by per-pair in-order
  delivery pipes),
* unmatched envelopes park in the **unexpected queue** (eager payloads pay
  an extra buffering copy when finally matched — the real cost that makes
  pre-posted receives faster),
* ``iprobe`` inspects the unexpected queue without consuming (this is the
  exact call MPI4Spark-Basic spins on inside the selector loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.mpi.envelope import Envelope, Protocol
from repro.mpi.request import Request
from repro.mpi.status import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.engine import SimEngine


@dataclass
class PostedRecv:
    """A receive waiting for a matching envelope."""

    source: int
    tag: int
    context_id: int
    request: Request
    posted_at: float = 0.0


class MatchingEngine:
    """Per-process matching state.

    The engine is *passive*: the runtime calls :meth:`deliver` when an
    envelope arrives and :meth:`post_recv` when a receive is posted; matched
    pairs are handed to ``on_match`` (the runtime schedules the data
    movement and completion timing).
    """

    def __init__(
        self,
        env: "SimEngine",
        on_match: Callable[[Envelope, PostedRecv, bool], None],
        name: str | None = None,
    ) -> None:
        self.env = env
        self.on_match = on_match
        self.unexpected: list[Envelope] = []
        self.posted: list[PostedRecv] = []
        self._probe_waiters: list[tuple[int, int, int, Any]] = []
        # counters, useful in tests and the polling-tax analysis
        self.n_unexpected_matches = 0
        self.n_posted_matches = 0
        self.n_iprobe_calls = 0
        # Registry metrics (repro.obs), rank-scoped when the owner gave us
        # a name (MPIProcess does; anonymous engines in unit tests don't).
        m = env.metrics
        prefix = f"mpi.rank.{name}" if name else "mpi.rank.anon"
        self._c_iprobe = m.counter(f"{prefix}.iprobe_calls")
        self._c_posted_matches = m.counter(f"{prefix}.posted_matches")
        self._c_unexpected_matches = m.counter(f"{prefix}.unexpected_matches")
        self._g_unexpected_depth = m.time_gauge(f"{prefix}.unexpected_depth")
        self._h_recv_wait = m.histogram(f"{prefix}.recv_match_wait_s")
        self._h_unexpected_wait = m.histogram(f"{prefix}.unexpected_wait_s")
        self._arrived_at: dict[int, float] = {}
        # The match counters are published from the plain ints above at
        # snapshot time: iprobe is on the Basic design's busy-poll path.
        m.on_snapshot(self._publish_metrics)

    def _publish_metrics(self) -> None:
        self._c_iprobe.value = float(self.n_iprobe_calls)
        self._c_posted_matches.value = float(self.n_posted_matches)
        self._c_unexpected_matches.value = float(self.n_unexpected_matches)

    # -- arrivals ----------------------------------------------------------
    def deliver(self, env_msg: Envelope) -> None:
        """An envelope arrived from the network."""
        for posted in self.posted:
            if env_msg.matches(posted.source, posted.tag, posted.context_id):
                # matched a pre-posted receive: fast path, no extra copy
                self.posted.remove(posted)
                self.n_posted_matches += 1
                self._h_recv_wait.observe(self.env.now - posted.posted_at)
                self.on_match(env_msg, posted, False)
                return
        self.unexpected.append(env_msg)
        self._arrived_at[id(env_msg)] = self.env.now
        self._g_unexpected_depth.set(len(self.unexpected))
        self._wake_probes(env_msg)

    # -- receives ----------------------------------------------------------
    def post_recv(self, source: int, tag: int, context_id: int, request: Request) -> None:
        """Post a receive; matches the oldest queued envelope if any."""
        now = self.env.now
        for env_msg in self.unexpected:
            if env_msg.matches(source, tag, context_id):
                self.unexpected.remove(env_msg)
                self.n_unexpected_matches += 1
                self._g_unexpected_depth.set(len(self.unexpected))
                arrived = self._arrived_at.pop(id(env_msg), now)
                self._h_unexpected_wait.observe(now - arrived)
                self._h_recv_wait.observe(0.0)
                self.on_match(
                    env_msg,
                    PostedRecv(source, tag, context_id, request, posted_at=now),
                    True,  # came off the unexpected queue → buffered copy
                )
                return
        self.posted.append(
            PostedRecv(source, tag, context_id, request, posted_at=now)
        )

    # -- probes ------------------------------------------------------------
    def iprobe(
        self, source: int, tag: int, context_id: int, status: Status | None = None
    ) -> bool:
        """Non-blocking probe of the unexpected queue (MPI_Iprobe)."""
        self.n_iprobe_calls += 1
        for env_msg in self.unexpected:
            if env_msg.matches(source, tag, context_id):
                if status is not None:
                    _fill_status(status, env_msg)
                return True
        return False

    def probe_event(self, source: int, tag: int, context_id: int):
        """Event triggering (with the envelope) when a match is queued.

        If a match is already queued the event triggers immediately. The
        envelope is *not* consumed — a subsequent recv claims it.
        """
        from repro.simnet.events import Event

        ev = Event(self.env)
        for env_msg in self.unexpected:
            if env_msg.matches(source, tag, context_id):
                ev.succeed(env_msg)
                return ev
        self._probe_waiters.append((source, tag, context_id, ev))
        return ev

    def _wake_probes(self, env_msg: Envelope) -> None:
        remaining = []
        for source, tag, ctx, ev in self._probe_waiters:
            if not ev.triggered and env_msg.matches(source, tag, ctx):
                ev.succeed(env_msg)
            elif not ev.triggered:
                remaining.append((source, tag, ctx, ev))
        self._probe_waiters = remaining

    def drop_unexpected(self) -> None:
        """Discard every queued envelope (rank death / world abort).

        Clearing the arrival stamps alongside the queue keeps the
        id()-keyed wait-time bookkeeping from matching a recycled object.
        """
        self.unexpected.clear()
        self._arrived_at.clear()
        self._g_unexpected_depth.set(0)

    # -- failure propagation ------------------------------------------------
    def fail_posted(
        self,
        pred: Callable[[PostedRecv], bool],
        exc_factory: Callable[[], BaseException],
    ) -> int:
        """Complete matching posted receives in error (rank death)."""
        victims = [p for p in self.posted if pred(p)]
        for posted in victims:
            self.posted.remove(posted)
            if not posted.request.event.triggered:
                posted.request.event.fail(exc_factory())
        return len(victims)

    def wake_probes_empty(self) -> None:
        """Wake every blocked probe with ``None`` (no message).

        Used on rank death so pollers (the Basic design's selector loop)
        re-examine their channels instead of parking forever on a peer that
        will never send again.
        """
        waiters, self._probe_waiters = self._probe_waiters, []
        for _, _, _, ev in waiters:
            if not ev.triggered:
                ev.succeed(None)


def _fill_status(status: Status, env_msg: Envelope) -> None:
    status.source = env_msg.src_rank
    status.tag = env_msg.tag
    status.nbytes = env_msg.nbytes
