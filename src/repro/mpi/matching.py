"""Receive-side message matching: posted-receive and unexpected queues.

This implements the MPI matching rules the paper's designs depend on:

* a receive matches the **earliest-arrived** envelope satisfying its
  ``(source, tag, context)`` spec (with wildcards),
* envelopes from the same sender on the same communicator are matched in
  send order (non-overtaking — guaranteed upstream by per-pair in-order
  delivery pipes),
* unmatched envelopes park in the **unexpected queue** (eager payloads pay
  an extra buffering copy when finally matched — the real cost that makes
  pre-posted receives faster),
* ``iprobe`` inspects the unexpected queue without consuming (this is the
  exact call MPI4Spark-Basic spins on inside the selector loop).

Queues are bucketed by ``(context, source, tag)`` so the common case — an
exact-spec recv or iprobe against a deep unexpected queue — is O(1) instead
of a linear scan.  Wildcard specs (``ANY_SOURCE``/``ANY_TAG``) fall back to
scanning bucket *heads* within the context, which is bounded by the number
of distinct (source, tag) pairs, not by queue depth.  FIFO order within a
bucket plus a global arrival sequence across buckets reproduces exactly the
earliest-arrived semantics of the previous single-list implementation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.mpi.envelope import Envelope
from repro.mpi.request import Request
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.engine import SimEngine


@dataclass
class PostedRecv:
    """A receive waiting for a matching envelope."""

    source: int
    tag: int
    context_id: int
    request: Request
    posted_at: float = 0.0
    seq: int = 0  # post order, used to arbitrate exact vs wildcard buckets


class MatchingEngine:
    """Per-process matching state.

    The engine is *passive*: the runtime calls :meth:`deliver` when an
    envelope arrives and :meth:`post_recv` when a receive is posted; matched
    pairs are handed to ``on_match`` (the runtime schedules the data
    movement and completion timing).

    Internally both queues are bucketed:

    * unexpected: ``{context_id: {(src, tag): deque[(arr_seq, arrived_at,
      envelope)]}}`` — FIFO per bucket, ``arr_seq`` totally orders arrivals
      across buckets so wildcard receives still claim the earliest arrival.
    * posted: exact specs in ``{(ctx, src, tag): deque[PostedRecv]}``,
      wildcard specs in a post-ordered overflow list.  ``PostedRecv.seq``
      arbitrates between an exact-bucket head and the first matching
      wildcard so posted order is respected exactly as before.
    """

    def __init__(
        self,
        env: "SimEngine",
        on_match: Callable[[Envelope, PostedRecv, bool], None],
        name: str | None = None,
    ) -> None:
        self.env = env
        self.on_match = on_match
        self._ux: dict[int, dict[tuple[int, int], deque]] = {}
        self._ux_count = 0
        self._arr_seq = 0
        self._posted_exact: dict[tuple[int, int, int], deque] = {}
        self._posted_wild: list[PostedRecv] = []
        self._post_seq = 0
        # Probe waiters bucketed by exact spec (wildcards are the -1
        # sentinels, so a delivery wakes at most the four candidate
        # buckets); the per-waiter sequence number restores the global
        # insertion order across buckets when several match at once.
        self._probe_waiters: dict[tuple[int, int, int], deque] = {}
        self._probe_seq = 0
        # counters, useful in tests and the polling-tax analysis
        self.n_unexpected_matches = 0
        self.n_posted_matches = 0
        self.n_iprobe_calls = 0
        # scan-length bookkeeping: fixed-size bucket array incremented on
        # the hot path (index = min(scan, 17)), bulk-published into the
        # registry histogram lazily at snapshot time.
        self._scan_hist = [0] * 18
        self._scan_published = [0] * 18
        self._iprobe_scanned = 0
        # Registry metrics (repro.obs), rank-scoped when the owner gave us
        # a name (MPIProcess does; anonymous engines in unit tests don't).
        m = env.metrics
        prefix = f"mpi.rank.{name}" if name else "mpi.rank.anon"
        self._c_iprobe = m.counter(f"{prefix}.iprobe_calls")
        self._c_posted_matches = m.counter(f"{prefix}.posted_matches")
        self._c_unexpected_matches = m.counter(f"{prefix}.unexpected_matches")
        self._c_iprobe_scanned = m.counter(f"{prefix}.iprobe_scan_len_total")
        self._g_unexpected_depth = m.time_gauge(f"{prefix}.unexpected_depth")
        self._h_recv_wait = m.histogram(f"{prefix}.recv_match_wait_s")
        self._h_unexpected_wait = m.histogram(f"{prefix}.unexpected_wait_s")
        self._h_match_scan = m.histogram(f"{prefix}.match_scan_len")
        # The match counters are published from the plain ints above at
        # snapshot time: iprobe is on the Basic design's busy-poll path.
        m.on_snapshot(self._publish_metrics)

    def _publish_metrics(self) -> None:
        self._c_iprobe.value = float(self.n_iprobe_calls)
        self._c_posted_matches.value = float(self.n_posted_matches)
        self._c_unexpected_matches.value = float(self.n_unexpected_matches)
        self._c_iprobe_scanned.value = float(self._iprobe_scanned)
        for scan_len, count in enumerate(self._scan_hist):
            delta = count - self._scan_published[scan_len]
            if delta:
                self._h_match_scan.observe_many(float(scan_len), delta)
                self._scan_published[scan_len] = count

    # -- compatibility views -----------------------------------------------
    @property
    def unexpected(self) -> list[Envelope]:
        """Queued envelopes in arrival order (read-only view)."""
        entries = []
        for buckets in self._ux.values():
            for dq in buckets.values():
                entries.extend(dq)
        entries.sort(key=lambda e: e[0])
        return [envl for _, _, envl in entries]

    @property
    def posted(self) -> list[PostedRecv]:
        """Outstanding posted receives in post order (read-only view)."""
        entries = list(self._posted_wild)
        for dq in self._posted_exact.values():
            entries.extend(dq)
        entries.sort(key=lambda p: p.seq)
        return entries

    # -- arrivals ----------------------------------------------------------
    def deliver(self, env_msg: Envelope) -> None:
        """An envelope arrived from the network."""
        scan = 0
        cand = None
        dq = None
        if self._posted_exact:
            dq = self._posted_exact.get(
                (env_msg.context_id, env_msg.src_rank, env_msg.tag)
            )
            if dq:
                scan += 1
                cand = dq[0]
        wild = None
        for p in self._posted_wild:  # post order → first match has lowest seq
            scan += 1
            if _spec_matches(p.source, p.tag, p.context_id, env_msg):
                wild = p
                break
        self._scan_hist[scan if scan < 17 else 17] += 1
        if wild is not None and (cand is None or wild.seq < cand.seq):
            self._posted_wild.remove(wild)
            cand = wild
        elif cand is not None:
            dq.popleft()
            if not dq:
                del self._posted_exact[(env_msg.context_id, env_msg.src_rank, env_msg.tag)]
        if cand is not None:
            # matched a pre-posted receive: fast path, no extra copy
            self.n_posted_matches += 1
            self._h_recv_wait.observe(self.env.now - cand.posted_at)
            if env_msg.trace_ctx is not None:
                self.env.causal.match(env_msg.trace_ctx, 0.0, False)
            self.on_match(env_msg, cand, False)
            return
        buckets = self._ux.get(env_msg.context_id)
        if buckets is None:
            buckets = self._ux[env_msg.context_id] = {}
        key = (env_msg.src_rank, env_msg.tag)
        bucket = buckets.get(key)
        if bucket is None:
            bucket = buckets[key] = deque()
        self._arr_seq += 1
        bucket.append((self._arr_seq, self.env.now, env_msg))
        self._ux_count += 1
        self._g_unexpected_depth.set(self._ux_count)
        self._wake_probes(env_msg)

    # -- unexpected-queue lookup -------------------------------------------
    def _find_unexpected(self, source: int, tag: int, context_id: int):
        """Earliest-arrived matching bucket, or None.

        Returns ``(buckets, key, deque, scan_len)`` where ``deque[0]`` is the
        earliest matching arrival, without consuming it.
        """
        buckets = self._ux.get(context_id)
        if buckets is None:
            return None, None, None, 0
        if source != ANY_SOURCE and tag != ANY_TAG:
            dq = buckets.get((source, tag))
            if dq:
                return buckets, (source, tag), dq, 1
            return None, None, None, 1
        best_key = None
        best_dq = None
        best_seq = None
        scan = 0
        for key, dq in buckets.items():
            scan += 1
            src, tg = key
            if source != ANY_SOURCE and source != src:
                continue
            if tag != ANY_TAG and tag != tg:
                continue
            head_seq = dq[0][0]
            if best_seq is None or head_seq < best_seq:
                best_key, best_dq, best_seq = key, dq, head_seq
        if best_dq is None:
            return None, None, None, scan
        return buckets, best_key, best_dq, scan

    def _pop_unexpected(self, context_id, buckets, key, dq):
        arr_seq, arrived, envl = dq.popleft()
        if not dq:
            del buckets[key]
            if not buckets:
                # Drop the empty per-context dict: the idle-queue probe
                # fast path is then a single int-keyed dict miss.
                del self._ux[context_id]
        self._ux_count -= 1
        return arrived, envl

    # -- receives ----------------------------------------------------------
    def post_recv(self, source: int, tag: int, context_id: int, request: Request) -> None:
        """Post a receive; matches the oldest queued envelope if any."""
        now = self.env.now
        buckets, key, dq, scan = self._find_unexpected(source, tag, context_id)
        self._scan_hist[scan if scan < 17 else 17] += 1
        if dq is not None:
            arrived, env_msg = self._pop_unexpected(context_id, buckets, key, dq)
            self.n_unexpected_matches += 1
            self._g_unexpected_depth.set(self._ux_count)
            self._h_unexpected_wait.observe(now - arrived)
            self._h_recv_wait.observe(0.0)
            if env_msg.trace_ctx is not None:
                # The dwell in the unexpected queue is the poll-discovery
                # delay the critical-path analyzer classifies (poll-tax for
                # the Basic design, queueing for Optimized).
                self.env.causal.match(env_msg.trace_ctx, now - arrived, True)
            self.on_match(
                env_msg,
                PostedRecv(source, tag, context_id, request, posted_at=now),
                True,  # came off the unexpected queue → buffered copy
            )
            return
        self._post_seq += 1
        posted = PostedRecv(
            source, tag, context_id, request, posted_at=now, seq=self._post_seq
        )
        if source == ANY_SOURCE or tag == ANY_TAG:
            self._posted_wild.append(posted)
        else:
            pdq = self._posted_exact.get((context_id, source, tag))
            if pdq is None:
                pdq = self._posted_exact[(context_id, source, tag)] = deque()
            pdq.append(posted)

    # -- probes ------------------------------------------------------------
    def iprobe(
        self, source: int, tag: int, context_id: int, status: Status | None = None
    ) -> bool:
        """Non-blocking probe of the unexpected queue (MPI_Iprobe)."""
        self.n_iprobe_calls += 1
        buckets = self._ux.get(context_id)
        if buckets is None:
            # Idle queue: the case the Basic design's poll loop hammers.
            return False
        if source != ANY_SOURCE and tag != ANY_TAG:
            self._iprobe_scanned += 1
            dq = buckets.get((source, tag))
            if not dq:
                return False
            if status is not None:
                _fill_status(status, dq[0][2])
            return True
        _, _, dq, scan = self._find_unexpected(source, tag, context_id)
        self._iprobe_scanned += scan
        if dq is None:
            return False
        if status is not None:
            _fill_status(status, dq[0][2])
        return True

    def probe_event(self, source: int, tag: int, context_id: int):
        """Event triggering (with the envelope) when a match is queued.

        If a match is already queued the event triggers immediately. The
        envelope is *not* consumed — a subsequent recv claims it.
        """
        from repro.simnet.events import Event

        ev = Event(self.env)
        _, _, dq, _ = self._find_unexpected(source, tag, context_id)
        if dq is not None:
            ev.succeed(dq[0][2])
            return ev
        self._probe_seq += 1
        key = (context_id, source, tag)
        waiters = self._probe_waiters.get(key)
        if waiters is None:
            waiters = self._probe_waiters[key] = deque()
        waiters.append((self._probe_seq, ev))
        return ev

    def _wake_probes(self, env_msg: Envelope) -> None:
        all_waiters = self._probe_waiters
        if not all_waiters:
            return
        # Every waiter in a matching bucket matches the envelope (the
        # bucket key IS the spec), so whole buckets wake at once; sorting
        # by waiter seq reproduces the old single-list wake order.
        ctx = env_msg.context_id
        src = env_msg.src_rank
        tag = env_msg.tag
        matched = None
        for key in (
            (ctx, src, tag),
            (ctx, ANY_SOURCE, tag),
            (ctx, src, ANY_TAG),
            (ctx, ANY_SOURCE, ANY_TAG),
        ):
            waiters = all_waiters.pop(key, None)
            if waiters:
                matched = waiters if matched is None else matched
                if matched is not waiters:
                    matched.extend(waiters)
        if matched is None:
            return
        for _, ev in sorted(matched):
            if not ev.triggered:
                ev.succeed(env_msg)

    def drop_unexpected(self) -> None:
        """Discard every queued envelope (rank death / world abort)."""
        self._ux.clear()
        self._ux_count = 0
        self._g_unexpected_depth.set(0)

    # -- failure propagation ------------------------------------------------
    def fail_posted(
        self,
        pred: Callable[[PostedRecv], bool],
        exc_factory: Callable[[], BaseException],
    ) -> int:
        """Complete matching posted receives in error (rank death).

        The queues are rebuilt once (a single filtering pass) instead of a
        per-victim ``list.remove`` — with n victims among n posted receives
        the old implementation was O(n²) in dataclass ``__eq__`` calls.
        """
        victims: list[PostedRecv] = []
        for key in list(self._posted_exact):
            dq = self._posted_exact[key]
            keep = deque(p for p in dq if not pred(p))
            if len(keep) != len(dq):
                victims.extend(p for p in dq if pred(p))
                if keep:
                    self._posted_exact[key] = keep
                else:
                    del self._posted_exact[key]
        keep_wild = [p for p in self._posted_wild if not pred(p)]
        if len(keep_wild) != len(self._posted_wild):
            victims.extend(p for p in self._posted_wild if pred(p))
            self._posted_wild = keep_wild
        victims.sort(key=lambda p: p.seq)  # fail in post order, as before
        for posted in victims:
            if not posted.request.event.triggered:
                posted.request.event.fail(exc_factory())
        return len(victims)

    def wake_probes_empty(self) -> None:
        """Wake every blocked probe with ``None`` (no message).

        Used on rank death so pollers (the Basic design's selector loop)
        re-examine their channels instead of parking forever on a peer that
        will never send again.
        """
        buckets, self._probe_waiters = self._probe_waiters, {}
        drained = sorted(w for dq in buckets.values() for w in dq)
        for _, ev in drained:
            if not ev.triggered:
                ev.succeed(None)


def _spec_matches(source: int, tag: int, context_id: int, envl: Envelope) -> bool:
    """Does ``envl`` satisfy a recv/probe spec? (wildcard-aware)"""
    if context_id != envl.context_id:
        return False
    if source != ANY_SOURCE and source != envl.src_rank:
        return False
    if tag != ANY_TAG and tag != envl.tag:
        return False
    return True


def _fill_status(status: Status, env_msg: Envelope) -> None:
    status.source = env_msg.src_rank
    status.tag = env_msg.tag
    status.nbytes = env_msg.nbytes
