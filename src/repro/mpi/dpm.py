"""Dynamic Process Management: MPI_Comm_spawn_multiple.

This is the feature MPI4Spark leans on (paper Sec. V / Fig. 3): worker
processes collectively spawn executor processes, producing

* a fresh intracommunicator among the children (the paper's ``DPM_COMM``,
  visible to children as their ``MPI_COMM_WORLD``), and
* an intercommunicator bridging parents and children (the paper's
  ``Intercomm``), returned to the parents and available to children via
  ``proc.parent_comm`` (MPI's ``MPI_Comm_get_parent``).

The call is collective over the parent communicator: every parent rank
must call it, and — as the paper describes — the launch arguments are
gathered across parents with ``MPI_Allgather`` before the spawn executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator

from repro.mpi.communicator import CommDescriptor, Group, Intercomm, Intracomm
from repro.mpi.errors import SpawnError
from repro.util.units import MS

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.runtime import MPIProcess

# Cost of forking a JVM-hosted MPI process and wiring it into the world.
# Startup is excluded from the paper's per-stage timings, so only the order
# of magnitude matters; a JVM fork+handshake is tens of milliseconds.
SPAWN_COST_S = 50 * MS


@dataclass(frozen=True)
class SpawnSpec:
    """One executable specification for spawn_multiple.

    ``main`` is the child's generator function ``main(proc)``; ``count``
    children run it on ``node``.
    """

    main: Callable[["MPIProcess"], Generator]
    node: int | str
    count: int = 1
    name: str = "child"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SpawnError(f"spawn count must be >= 1, got {self.count}")


def spawn_multiple(
    parent_comm: Intracomm, specs: list[SpawnSpec] | None, root: int = 0
) -> Generator:
    """Collective spawn. Returns the parent-side :class:`Intercomm`.

    Arguments are significant at ``root`` only (like the MPI standard);
    other ranks may pass None. All parents receive the same intercomm
    handle semantics once the collective completes.
    """
    from repro.mpi.runtime import MPIProcess, RankSpec  # cycle guard

    proc = parent_comm.proc
    world = proc.world
    rank = parent_comm.rank

    # Paper, Sec. V: "an MPI_allgather was used across the workers to gather
    # all the different arguments used for launching the executors."
    gathered = yield from parent_comm.allgather(specs if rank == root else None)
    root_specs = gathered[root]
    if not root_specs:
        raise SpawnError("spawn_multiple requires a non-empty spec list at root")

    # Only the root materializes the children; everyone then learns the
    # child gids through a broadcast (the "collective launch").
    if rank == root:
        children: list[MPIProcess] = []
        child_rank_specs: list[RankSpec] = []
        for spec in root_specs:
            for _ in range(spec.count):
                child_rank_specs.append(
                    RankSpec(main=spec.main, node=spec.node, name=spec.name)
                )
        child_procs, child_desc = world.create_processes(
            child_rank_specs, comm_name="DPM_COMM"
        )
        children = child_procs
        child_gids = [p.gid for p in children]
    else:
        child_gids = None

    child_gids = yield from parent_comm.bcast(child_gids, root)
    yield proc.env.timeout(SPAWN_COST_S)

    # Build the parent<->child intercommunicator. Context ids are agreed by
    # allocating at root and broadcasting — every rank's descriptor must
    # carry the same identity for matching to line up.
    if rank == root:
        inter_desc = CommDescriptor(
            "PARENT_CHILD_INTERCOMM",
            local_group=parent_comm.desc.local_group,
            remote_group=Group(child_gids),
        )
        inter_ctx = (inter_desc.ctx_pt2pt, inter_desc.ctx_coll)
    else:
        inter_ctx = None
    inter_ctx = yield from parent_comm.bcast(inter_ctx, root)
    if rank != root:
        inter_desc = CommDescriptor(
            "PARENT_CHILD_INTERCOMM",
            local_group=parent_comm.desc.local_group,
            remote_group=Group(child_gids),
            ctx=inter_ctx,
        )

    parent_intercomm = Intercomm(proc, inter_desc)

    # Children see the mirrored intercomm and then start running.
    if rank == root:
        child_side_desc = inter_desc.mirrored()
        for child in children:
            child.parent_comm = Intercomm(child, child_side_desc)
            child.start()

    return parent_intercomm
