"""A from-scratch MPI runtime over the simulated cluster.

This package substitutes for MVAPICH2-X plus the paper's custom Java
bindings: communicators (intra + inter), tag matching with unexpected
queues, blocking/nonblocking point-to-point with an eager/rendezvous
protocol switch, probe/iprobe, tree/ring collectives, and Dynamic Process
Management (``spawn_multiple``) — exactly the MPI surface MPI4Spark uses.
"""

from repro.mpi.communicator import (
    MAX_TAG,
    Comm,
    CommDescriptor,
    Group,
    Intercomm,
    Intracomm,
)
from repro.mpi.datatypes import BASIC_TYPES, BYTE, DOUBLE, INT, LONG, Datatype
from repro.mpi.dpm import SPAWN_COST_S, SpawnSpec
from repro.mpi.envelope import RTS_BYTES, Envelope, Protocol
from repro.mpi.errors import CommError, MPIError, SpawnError, TagError
from repro.mpi.matching import MatchingEngine
from repro.mpi.request import Request, wait_all, wait_any
from repro.mpi.runtime import MPIProcess, MPIWorld, RankSpec
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status

__all__ = [
    "MPIWorld",
    "MPIProcess",
    "RankSpec",
    "SpawnSpec",
    "SPAWN_COST_S",
    "Comm",
    "Intracomm",
    "Intercomm",
    "CommDescriptor",
    "Group",
    "MAX_TAG",
    "Request",
    "wait_all",
    "wait_any",
    "Status",
    "ANY_SOURCE",
    "ANY_TAG",
    "Envelope",
    "Protocol",
    "RTS_BYTES",
    "MatchingEngine",
    "Datatype",
    "BYTE",
    "INT",
    "LONG",
    "DOUBLE",
    "BASIC_TYPES",
    "MPIError",
    "CommError",
    "TagError",
    "SpawnError",
]
