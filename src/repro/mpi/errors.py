"""MPI runtime error types."""

from __future__ import annotations


class MPIError(RuntimeError):
    """Base class for MPI runtime failures."""


class CommError(MPIError):
    """Invalid communicator usage (bad rank, wrong group, freed comm)."""


class TagError(MPIError):
    """Tag outside the valid user range."""


class SpawnError(MPIError):
    """Dynamic Process Management failure."""


class RankDeadError(MPIError):
    """A point-to-point peer has died (ULFM's MPI_ERR_PROC_FAILED).

    Only raised under communicator-*shrink* fault semantics: operations
    naming the dead rank complete in error while the rest of the world
    keeps running.
    """


class WorldAbortedError(MPIError):
    """The whole MPI world aborted after a rank death.

    Default MPI error-handler semantics (MPI_ERRORS_ARE_FATAL): one dead
    rank takes every connected communicator with it — the paper's Sec VI-A
    caveat about launching Spark executors via DPM.
    """
