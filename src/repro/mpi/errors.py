"""MPI runtime error types."""

from __future__ import annotations


class MPIError(RuntimeError):
    """Base class for MPI runtime failures."""


class CommError(MPIError):
    """Invalid communicator usage (bad rank, wrong group, freed comm)."""


class TagError(MPIError):
    """Tag outside the valid user range."""


class SpawnError(MPIError):
    """Dynamic Process Management failure."""
