"""The MPI world: simulated ranks, routing, and the wire protocol.

:class:`MPIWorld` owns every simulated MPI process across all worlds
(``MPI_COMM_WORLD`` plus DPM-spawned child worlds), routes envelopes
through per-pair in-order *pipes* (giving MPI's non-overtaking guarantee),
and implements the eager/rendezvous protocol switch:

* **eager** (≤ ``WireModel.rendezvous_threshold``): the payload rides the
  envelope; the send completes after the sender-side overhead. Matching
  from the unexpected queue pays an extra buffering copy.
* **rendezvous**: the envelope is a small RTS; when the receiver matches it,
  a CTS returns and the bulk payload moves — so *when the receive is
  posted* directly shapes transfer latency. This is the semantics the
  MPI4Spark-Optimized design exploits by posting ``MPI_Recv`` from the
  header-parsing channel handler.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.mpi.communicator import Comm, CommDescriptor, Group, Intercomm, Intracomm
from repro.mpi.envelope import RTS_BYTES, Envelope, Protocol
from repro.mpi.errors import MPIError, RankDeadError, WorldAbortedError
from repro.mpi.matching import MatchingEngine, PostedRecv
from repro.mpi.request import Request
from repro.mpi.status import ANY_SOURCE, ANY_TAG
from repro.simnet.engine import SimEngine
from repro.simnet.interconnect import WireModel
from repro.simnet.resources import Store
from repro.simnet.topology import LinkDown, MessageDropped, SimCluster, SimNode
from repro.util.serialization import sizeof
from repro.util.units import GiB

# Copying an eager payload out of the unexpected queue (bounce buffer).
UNEXPECTED_COPY_S_PER_BYTE = 1.0 / (8.0 * GiB)


class MPIProcess:
    """One simulated MPI rank (may belong to several communicators)."""

    def __init__(self, world: "MPIWorld", gid: int, node: SimNode, name: str) -> None:
        self.world = world
        self.gid = gid
        self.node = node
        self.name = name
        self.env = world.env
        self.alive = True
        self.matching = MatchingEngine(world.env, self._on_match, name=name)
        self.comm_world: Intracomm | None = None  # set by launch/spawn
        self.parent_comm: Intercomm | None = None  # set for DPM children
        self.sim_process = None  # the kernel Process running main()
        self._main: Callable[["MPIProcess"], Generator] | None = None
        # Every communicator handle this rank ever holds, keyed by context
        # id (both pt2pt and coll) — the failure machinery uses it to map a
        # (source rank, context) pair back to a global id.
        self._comm_descs: dict[int, CommDescriptor] = {}

    def _register_comm(self, desc: CommDescriptor) -> None:
        self._comm_descs[desc.ctx_pt2pt] = desc
        self._comm_descs[desc.ctx_coll] = desc

    def _peer_gid(self, source_rank: int, context_id: int) -> int | None:
        """Resolve a (rank, context) peer reference to a gid, if known."""
        desc = self._comm_descs.get(context_id)
        if desc is None:
            return None
        group = desc.remote_group or desc.local_group
        if 0 <= source_rank < group.size:
            return group.gid_of(source_rank)
        return None

    def _check_sendable(self, dst_gid: int) -> None:
        if self.world.aborted:
            raise WorldAbortedError(f"{self.name}: MPI world has aborted")
        if not self.alive:
            raise RankDeadError(f"{self.name} is dead")
        dst = self.world._procs.get(dst_gid)
        if dst is None or not dst.alive:
            name = dst.name if dst is not None else f"gid={dst_gid}"
            raise RankDeadError(f"{self.name}: peer {name} is dead")

    def start(self) -> None:
        """Begin executing this rank's main() as a simulation process."""
        if self._main is None:
            raise MPIError(f"{self.name} has no main function")
        if self.sim_process is not None:
            raise MPIError(f"{self.name} already started")
        self.sim_process = self.env.process(
            self._main(self), name=f"mpi:{self.name}"
        )

    # -- send side -----------------------------------------------------------
    def _send(
        self,
        dst_gid: int,
        src_rank: int,
        context_id: int,
        tag: int,
        payload: Any,
        nbytes: int | None,
        trace_ctx: Any = None,
    ) -> Generator:
        """Blocking send: eager returns after local overhead; rendezvous
        returns once the payload has been pulled by the receiver.

        Sends involving a dead peer (or an aborted world) raise
        :class:`RankDeadError` / :class:`WorldAbortedError` — MPI transports
        on lossless fabrics surface peer failure as an immediate error, not
        a timeout.
        """
        self._check_sendable(dst_gid)
        world = self.world
        model = world.model
        size = sizeof(payload) if nbytes is None else int(nbytes)
        overhead = world._send_cpu_memo.get(size)
        if overhead is None:
            overhead = world._send_cpu_memo[size] = model.sender_cpu_time(size)
        yield self.env.timeout(overhead)
        self._check_sendable(dst_gid)  # peer may have died during overhead
        self.world._c_send_bytes.inc(size)
        if size <= model.rendezvous_threshold:
            self.world._c_send_eager.inc()
            envl = Envelope(
                self.gid, src_rank, dst_gid, context_id, tag, payload, size,
                Protocol.EAGER, trace_ctx=trace_ctx,
            )
            self.world._route(envl)
            return
        self.world._c_send_rendezvous.inc()
        done = self.env.event()
        envl = Envelope(
            self.gid, src_rank, dst_gid, context_id, tag, payload, size,
            Protocol.RENDEZVOUS, send_done=done, trace_ctx=trace_ctx,
        )
        self.world._route(envl)
        yield done

    def _isend(
        self,
        dst_gid: int,
        src_rank: int,
        context_id: int,
        tag: int,
        payload: Any,
        nbytes: int | None,
        trace_ctx: Any = None,
    ) -> Request:
        req = Request(self.env, "send")
        size = sizeof(payload) if nbytes is None else int(nbytes)
        req.status.nbytes = size
        try:
            self._check_sendable(dst_gid)
        except MPIError as exc:
            req.event.fail(exc)
            return req

        def _run() -> Generator:
            yield from self._send(
                dst_gid, src_rank, context_id, tag, payload, size,
                trace_ctx=trace_ctx,
            )

        proc = self.env.process(_run(), name=f"isend:{self.name}")
        proc.add_callback(
            lambda ev: req.event.succeed() if ev.ok else req.event.fail(ev.value)
        )
        return req

    # -- recv side -----------------------------------------------------------
    def _irecv(self, source: int, tag: int, context_id: int) -> Request:
        req = Request(self.env, "recv")
        if self.world.aborted:
            req.event.fail(WorldAbortedError(f"{self.name}: MPI world has aborted"))
            return req
        if not self.alive:
            req.event.fail(RankDeadError(f"{self.name} is dead"))
            return req
        if source != ANY_SOURCE:
            # A receive naming an already-dead peer can never complete; fail
            # it now unless matching data is already queued.
            peer_gid = self._peer_gid(source, context_id)
            if (
                peer_gid is not None
                and peer_gid in self.world.dead
                and not self.matching.iprobe(source, tag, context_id)
            ):
                req.event.fail(
                    RankDeadError(f"{self.name}: recv from dead gid={peer_gid}")
                )
                return req
        self.matching.post_recv(source, tag, context_id, req)
        return req

    def _on_match(self, envl: Envelope, posted: PostedRecv, buffered: bool) -> None:
        """Matching engine found a (envelope, receive) pair: move the data."""
        model = self.world.model

        def _fail(exc: BaseException) -> None:
            if envl.send_done is not None and not envl.send_done.triggered:
                envl.send_done.fail(RankDeadError(str(exc)))
            if not posted.request.event.triggered:
                posted.request.event.fail(RankDeadError(str(exc)))

        def _complete() -> Generator:
            if envl.protocol is Protocol.RENDEZVOUS:
                src_proc = self.world.process(envl.src_gid)
                try:
                    # CTS back to the sender, then the bulk payload.
                    yield from self.world.cluster.wire_path(
                        self.node, src_proc.node, RTS_BYTES, model
                    )
                    yield from self.world.cluster.wire_path(
                        src_proc.node, self.node, envl.nbytes, model
                    )
                except (LinkDown, MessageDropped) as exc:
                    # A lost CTS/payload on the lossless fabric means the
                    # path itself failed: both sides complete in error.
                    _fail(exc)
                    return
                if envl.send_done is not None and not envl.send_done.triggered:
                    envl.send_done.succeed()
            world = self.world
            delay = world._recv_cpu_memo.get(envl.nbytes)
            if delay is None:
                delay = world._recv_cpu_memo[envl.nbytes] = (
                    model.receiver_cpu_time(envl.nbytes)
                )
            if buffered and envl.protocol is Protocol.EAGER:
                # Only eager payloads were actually parked in a bounce
                # buffer; a rendezvous RTS carries no data to copy.
                delay += envl.nbytes * UNEXPECTED_COPY_S_PER_BYTE
            yield self.env.timeout(delay)
            req = posted.request
            if req.event.triggered:
                return  # already failed by an abort/shrink sweep
            if self.world.aborted or not self.alive:
                req.event.fail(
                    WorldAbortedError(f"{self.name}: world aborted during recv")
                    if self.world.aborted
                    else RankDeadError(f"{self.name} died during recv")
                )
                return
            req.status.source = envl.src_rank
            req.status.tag = envl.tag
            req.status.nbytes = envl.nbytes
            req.event.succeed(envl.payload)

        self.env.process(_complete(), name=f"match:{self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MPIProcess {self.name} gid={self.gid} on {self.node.name}>"


class _Pipe:
    """In-order delivery channel for one (src, dst) process pair."""

    def __init__(self, world: "MPIWorld", src: MPIProcess, dst: MPIProcess) -> None:
        self.world = world
        self.src = src
        self.dst = dst
        self.store: Store = Store(world.env)
        world.env.process(self._pump(), name=f"pipe:{src.gid}->{dst.gid}")

    def _pump(self) -> Generator:
        while True:
            envl: Envelope = yield self.store.get()
            try:
                yield from self.world.cluster.wire_path(
                    self.src.node, self.dst.node, envl.wire_bytes(), self.world.model
                )
            except MessageDropped as exc:
                # MPI has no transport-level retransmit in this model: a
                # lost envelope on the "lossless" fabric escalates to a
                # fault (world abort or rank isolation per fault_mode) —
                # the blast-radius asymmetry vs. TCP's quiet RTO.
                self.world._on_envelope_lost(envl, exc)
                continue
            except LinkDown as exc:
                if envl.send_done is not None and not envl.send_done.triggered:
                    envl.send_done.fail(RankDeadError(str(exc)))
                continue
            if not self.dst.alive:
                if envl.send_done is not None and not envl.send_done.triggered:
                    envl.send_done.fail(
                        RankDeadError(f"{self.dst.name} died before delivery")
                    )
                continue
            self.dst.matching.deliver(envl)


@dataclass(frozen=True)
class RankSpec:
    """Where one rank runs and what it executes.

    ``main`` is a generator function called as ``main(proc)``; its return
    value becomes the rank's result.
    """

    main: Callable[[MPIProcess], Generator]
    node: int | str | SimNode
    name: str = "rank"


class MPIWorld:
    """Runtime owning all simulated MPI processes on one cluster.

    ``fault_mode`` picks the failure semantics the paper contrasts:

    * ``"abort"`` (default, MPI_ERRORS_ARE_FATAL): one dead rank aborts the
      whole runtime — every pending operation everywhere fails with
      :class:`WorldAbortedError`; this is what makes DPM-launched executors
      fragile.
    * ``"shrink"`` (ULFM-style): only operations naming the dead rank fail
      (:class:`RankDeadError`); survivors keep communicating.
    """

    def __init__(
        self,
        env: SimEngine,
        cluster: SimCluster,
        model: WireModel,
        fault_mode: str = "abort",
    ) -> None:
        if fault_mode not in ("abort", "shrink"):
            raise ValueError(f"fault_mode must be 'abort' or 'shrink', got {fault_mode!r}")
        self.env = env
        self.cluster = cluster
        self.model = model
        self.fault_mode = fault_mode
        self.aborted = False
        self.dead: set[int] = set()
        self.lost_envelopes = 0
        self._gids = itertools.count(0)
        self._procs: dict[int, MPIProcess] = {}
        self._pipes: dict[tuple[int, int], _Pipe] = {}
        cluster.link_state.on_change(self._on_link_event)
        # World-level traffic counters (repro.obs).
        m = env.metrics
        self._c_send_eager = m.counter("mpi.world.sends_eager")
        self._c_send_rendezvous = m.counter("mpi.world.sends_rendezvous")
        self._c_send_bytes = m.counter("mpi.world.send_bytes")
        # Pure-function memos over the (fixed) world model: per-message
        # CPU overheads keyed by payload size.
        self._send_cpu_memo: dict[int, float] = {}
        self._recv_cpu_memo: dict[int, float] = {}

    # -- registry ------------------------------------------------------------
    def process(self, gid: int) -> MPIProcess:
        try:
            return self._procs[gid]
        except KeyError:
            raise MPIError(f"no such MPI process gid={gid}") from None

    # -- failure machinery ---------------------------------------------------
    def _on_link_event(self, kind: str, payload) -> None:
        if kind != "node-failed":
            return
        node: SimNode = payload
        for proc in list(self._procs.values()):
            if proc.node is node and proc.alive:
                self.kill_process(proc.gid, reason=f"{node.name} failed")

    def kill_process(self, gid: int, reason: str = "killed") -> None:
        """Crash one rank; consequences follow :attr:`fault_mode`."""
        proc = self._procs.get(gid)
        if proc is None or not proc.alive:
            return
        proc.alive = False
        self.dead.add(gid)
        exc_factory = lambda: RankDeadError(f"{proc.name}: {reason}")  # noqa: E731
        # The dead rank's own pending operations die with it.
        proc.matching.fail_posted(lambda p: True, exc_factory)
        proc.matching.wake_probes_empty()
        self._drop_unexpected(proc, exc_factory)
        if self.fault_mode == "abort":
            self._abort_world(f"{proc.name} died ({reason})")
        else:
            self._shrink_after_death(proc)

    def _drop_unexpected(self, proc: MPIProcess, exc_factory) -> None:
        """Discard a dead rank's unexpected queue, erroring rendezvous senders."""
        for envl in proc.matching.unexpected:
            if envl.send_done is not None and not envl.send_done.triggered:
                envl.send_done.fail(exc_factory())
        proc.matching.drop_unexpected()

    def _abort_world(self, reason: str) -> None:
        if self.aborted:
            return
        self.aborted = True
        # Causal tracing: an abort orphans every in-flight span — close them
        # all with a terminal mpi.abort event so the flight log explains why.
        if self.env.causal.enabled:
            self.env.causal.abort(reason)
        exc_factory = lambda: WorldAbortedError(  # noqa: E731
            f"MPI world aborted: {reason}"
        )
        for proc in self._procs.values():
            if proc.alive:
                proc.alive = False
                self.dead.add(proc.gid)
            proc.matching.fail_posted(lambda p: True, exc_factory)
            proc.matching.wake_probes_empty()
            self._drop_unexpected(proc, exc_factory)
        for pipe in self._pipes.values():
            while pipe.store.items:
                envl = pipe.store.items.popleft()
                if envl.send_done is not None and not envl.send_done.triggered:
                    envl.send_done.fail(exc_factory())

    def _shrink_after_death(self, dead: MPIProcess) -> None:
        """ULFM-style isolation: only ops naming the dead rank fail."""
        exc_factory = lambda: RankDeadError(f"{dead.name} died")  # noqa: E731
        for proc in self._procs.values():
            if proc is dead or not proc.alive:
                continue
            proc.matching.fail_posted(
                lambda p, proc=proc: (
                    p.source != ANY_SOURCE
                    and proc._peer_gid(p.source, p.context_id) == dead.gid
                ),
                exc_factory,
            )
        # Envelopes already queued toward or from the dead rank never land.
        for (src_gid, dst_gid), pipe in self._pipes.items():
            if dead.gid not in (src_gid, dst_gid):
                continue
            while pipe.store.items:
                envl = pipe.store.items.popleft()
                if envl.send_done is not None and not envl.send_done.triggered:
                    envl.send_done.fail(exc_factory())

    def _on_envelope_lost(self, envl: Envelope, exc: MessageDropped) -> None:
        """A wire-level drop hit the MPI path (no retransmit layer here)."""
        self.lost_envelopes += 1
        if envl.send_done is not None and not envl.send_done.triggered:
            envl.send_done.fail(RankDeadError(f"envelope lost: {exc}"))
        if self.fault_mode == "abort":
            self._abort_world(f"message loss on the fabric ({exc})")

    def _route(self, envl: Envelope) -> None:
        key = (envl.src_gid, envl.dst_gid)
        pipe = self._pipes.get(key)
        if pipe is None:
            pipe = _Pipe(self, self.process(envl.src_gid), self.process(envl.dst_gid))
            self._pipes[key] = pipe
        pipe.store.put(envl)

    # -- world creation --------------------------------------------------------
    def create_processes(
        self, specs: list[RankSpec], comm_name: str
    ) -> tuple[list[MPIProcess], CommDescriptor]:
        """Allocate processes and a world communicator descriptor (no start)."""
        procs = []
        for spec in specs:
            gid = next(self._gids)
            node = self.cluster.node(spec.node)
            proc = MPIProcess(self, gid, node, f"{spec.name}#{gid}")
            proc._main = spec.main
            procs.append(proc)
        for proc in procs:
            self._procs[proc.gid] = proc
        desc = CommDescriptor(comm_name, Group([p.gid for p in procs]))
        for proc in procs:
            proc.comm_world = Intracomm(proc, desc)
        return procs, desc

    def launch(
        self, specs: list[RankSpec], comm_name: str = "MPI_COMM_WORLD"
    ) -> list[MPIProcess]:
        """mpiexec equivalent: start one simulated process per spec.

        Each rank's ``main(proc)`` generator starts immediately; results are
        available as ``proc.sim_process.value`` after ``env.run()``.
        """
        if not specs:
            raise MPIError("launch of zero ranks")
        procs, _ = self.create_processes(specs, comm_name)
        for proc in procs:
            proc.start()
        return procs

    def run(self, until: float | None = None) -> None:
        """Convenience wrapper over the engine's run()."""
        self.env.run(until=until)
