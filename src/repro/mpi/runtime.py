"""The MPI world: simulated ranks, routing, and the wire protocol.

:class:`MPIWorld` owns every simulated MPI process across all worlds
(``MPI_COMM_WORLD`` plus DPM-spawned child worlds), routes envelopes
through per-pair in-order *pipes* (giving MPI's non-overtaking guarantee),
and implements the eager/rendezvous protocol switch:

* **eager** (≤ ``WireModel.rendezvous_threshold``): the payload rides the
  envelope; the send completes after the sender-side overhead. Matching
  from the unexpected queue pays an extra buffering copy.
* **rendezvous**: the envelope is a small RTS; when the receiver matches it,
  a CTS returns and the bulk payload moves — so *when the receive is
  posted* directly shapes transfer latency. This is the semantics the
  MPI4Spark-Optimized design exploits by posting ``MPI_Recv`` from the
  header-parsing channel handler.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.mpi.communicator import Comm, CommDescriptor, Group, Intercomm, Intracomm
from repro.mpi.envelope import RTS_BYTES, Envelope, Protocol
from repro.mpi.errors import MPIError
from repro.mpi.matching import MatchingEngine, PostedRecv
from repro.mpi.request import Request
from repro.mpi.status import ANY_SOURCE, ANY_TAG
from repro.simnet.engine import SimEngine
from repro.simnet.interconnect import WireModel
from repro.simnet.resources import Store
from repro.simnet.topology import SimCluster, SimNode
from repro.util.serialization import sizeof
from repro.util.units import GiB

# Copying an eager payload out of the unexpected queue (bounce buffer).
UNEXPECTED_COPY_S_PER_BYTE = 1.0 / (8.0 * GiB)


class MPIProcess:
    """One simulated MPI rank (may belong to several communicators)."""

    def __init__(self, world: "MPIWorld", gid: int, node: SimNode, name: str) -> None:
        self.world = world
        self.gid = gid
        self.node = node
        self.name = name
        self.env = world.env
        self.matching = MatchingEngine(world.env, self._on_match)
        self.comm_world: Intracomm | None = None  # set by launch/spawn
        self.parent_comm: Intercomm | None = None  # set for DPM children
        self.sim_process = None  # the kernel Process running main()
        self._main: Callable[["MPIProcess"], Generator] | None = None

    def start(self) -> None:
        """Begin executing this rank's main() as a simulation process."""
        if self._main is None:
            raise MPIError(f"{self.name} has no main function")
        if self.sim_process is not None:
            raise MPIError(f"{self.name} already started")
        self.sim_process = self.env.process(
            self._main(self), name=f"mpi:{self.name}"
        )

    # -- send side -----------------------------------------------------------
    def _send(
        self,
        dst_gid: int,
        src_rank: int,
        context_id: int,
        tag: int,
        payload: Any,
        nbytes: int | None,
    ) -> Generator:
        """Blocking send: eager returns after local overhead; rendezvous
        returns once the payload has been pulled by the receiver."""
        model = self.world.model
        size = sizeof(payload) if nbytes is None else int(nbytes)
        yield self.env.timeout(model.sender_cpu_time(size))
        if size <= model.rendezvous_threshold:
            envl = Envelope(
                self.gid, src_rank, dst_gid, context_id, tag, payload, size,
                Protocol.EAGER,
            )
            self.world._route(envl)
            return
        done = self.env.event()
        envl = Envelope(
            self.gid, src_rank, dst_gid, context_id, tag, payload, size,
            Protocol.RENDEZVOUS, send_done=done,
        )
        self.world._route(envl)
        yield done

    def _isend(
        self,
        dst_gid: int,
        src_rank: int,
        context_id: int,
        tag: int,
        payload: Any,
        nbytes: int | None,
    ) -> Request:
        req = Request(self.env, "send")
        size = sizeof(payload) if nbytes is None else int(nbytes)
        req.status.nbytes = size

        def _run() -> Generator:
            yield from self._send(dst_gid, src_rank, context_id, tag, payload, size)

        proc = self.env.process(_run(), name=f"isend:{self.name}")
        proc.add_callback(
            lambda ev: req.event.succeed() if ev.ok else req.event.fail(ev.value)
        )
        return req

    # -- recv side -----------------------------------------------------------
    def _irecv(self, source: int, tag: int, context_id: int) -> Request:
        req = Request(self.env, "recv")
        self.matching.post_recv(source, tag, context_id, req)
        return req

    def _on_match(self, envl: Envelope, posted: PostedRecv, buffered: bool) -> None:
        """Matching engine found a (envelope, receive) pair: move the data."""
        model = self.world.model

        def _complete() -> Generator:
            if envl.protocol is Protocol.RENDEZVOUS:
                src_proc = self.world.process(envl.src_gid)
                # CTS back to the sender, then the bulk payload.
                yield from self.world.cluster.wire_path(
                    self.node, src_proc.node, RTS_BYTES, model
                )
                yield from self.world.cluster.wire_path(
                    src_proc.node, self.node, envl.nbytes, model
                )
                if envl.send_done is not None and not envl.send_done.triggered:
                    envl.send_done.succeed()
            delay = model.receiver_cpu_time(envl.nbytes)
            if buffered and envl.protocol is Protocol.EAGER:
                # Only eager payloads were actually parked in a bounce
                # buffer; a rendezvous RTS carries no data to copy.
                delay += envl.nbytes * UNEXPECTED_COPY_S_PER_BYTE
            yield self.env.timeout(delay)
            req = posted.request
            req.status.source = envl.src_rank
            req.status.tag = envl.tag
            req.status.nbytes = envl.nbytes
            req.event.succeed(envl.payload)

        self.env.process(_complete(), name=f"match:{self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MPIProcess {self.name} gid={self.gid} on {self.node.name}>"


class _Pipe:
    """In-order delivery channel for one (src, dst) process pair."""

    def __init__(self, world: "MPIWorld", src: MPIProcess, dst: MPIProcess) -> None:
        self.world = world
        self.src = src
        self.dst = dst
        self.store: Store = Store(world.env)
        world.env.process(self._pump(), name=f"pipe:{src.gid}->{dst.gid}")

    def _pump(self) -> Generator:
        while True:
            envl: Envelope = yield self.store.get()
            yield from self.world.cluster.wire_path(
                self.src.node, self.dst.node, envl.wire_bytes(), self.world.model
            )
            self.dst.matching.deliver(envl)


@dataclass(frozen=True)
class RankSpec:
    """Where one rank runs and what it executes.

    ``main`` is a generator function called as ``main(proc)``; its return
    value becomes the rank's result.
    """

    main: Callable[[MPIProcess], Generator]
    node: int | str | SimNode
    name: str = "rank"


class MPIWorld:
    """Runtime owning all simulated MPI processes on one cluster."""

    def __init__(self, env: SimEngine, cluster: SimCluster, model: WireModel) -> None:
        self.env = env
        self.cluster = cluster
        self.model = model
        self._gids = itertools.count(0)
        self._procs: dict[int, MPIProcess] = {}
        self._pipes: dict[tuple[int, int], _Pipe] = {}

    # -- registry ------------------------------------------------------------
    def process(self, gid: int) -> MPIProcess:
        try:
            return self._procs[gid]
        except KeyError:
            raise MPIError(f"no such MPI process gid={gid}") from None

    def _route(self, envl: Envelope) -> None:
        key = (envl.src_gid, envl.dst_gid)
        pipe = self._pipes.get(key)
        if pipe is None:
            pipe = _Pipe(self, self.process(envl.src_gid), self.process(envl.dst_gid))
            self._pipes[key] = pipe
        pipe.store.put(envl)

    # -- world creation --------------------------------------------------------
    def create_processes(
        self, specs: list[RankSpec], comm_name: str
    ) -> tuple[list[MPIProcess], CommDescriptor]:
        """Allocate processes and a world communicator descriptor (no start)."""
        procs = []
        for spec in specs:
            gid = next(self._gids)
            node = self.cluster.node(spec.node)
            proc = MPIProcess(self, gid, node, f"{spec.name}#{gid}")
            proc._main = spec.main
            procs.append(proc)
        for proc in procs:
            self._procs[proc.gid] = proc
        desc = CommDescriptor(comm_name, Group([p.gid for p in procs]))
        for proc in procs:
            proc.comm_world = Intracomm(proc, desc)
        return procs, desc

    def launch(
        self, specs: list[RankSpec], comm_name: str = "MPI_COMM_WORLD"
    ) -> list[MPIProcess]:
        """mpiexec equivalent: start one simulated process per spec.

        Each rank's ``main(proc)`` generator starts immediately; results are
        available as ``proc.sim_process.value`` after ``env.run()``.
        """
        if not specs:
            raise MPIError("launch of zero ranks")
        procs, _ = self.create_processes(specs, comm_name)
        for proc in procs:
            proc.start()
        return procs

    def run(self, until: float | None = None) -> None:
        """Convenience wrapper over the engine's run()."""
        self.env.run(until=until)
