"""MPI datatype descriptors.

The simulated runtime moves Python objects, so datatypes exist for size
accounting and API fidelity (``comm.send(buf, dtype=MPI.BYTE)`` reads like
the paper's Java bindings, which expose the same basic types).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Datatype:
    """A basic MPI datatype: a name and an extent in bytes."""

    name: str
    extent: int

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise ValueError(f"datatype extent must be positive, got {self.extent}")

    def size_of(self, count: int) -> int:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return self.extent * count


BYTE = Datatype("MPI_BYTE", 1)
CHAR = Datatype("MPI_CHAR", 1)
INT32 = Datatype("MPI_INT32_T", 4)
INT = Datatype("MPI_INT", 4)
LONG = Datatype("MPI_LONG", 8)
INT64 = Datatype("MPI_INT64_T", 8)
FLOAT = Datatype("MPI_FLOAT", 4)
DOUBLE = Datatype("MPI_DOUBLE", 8)

BASIC_TYPES = {
    t.name: t for t in (BYTE, CHAR, INT32, INT, LONG, INT64, FLOAT, DOUBLE)
}
