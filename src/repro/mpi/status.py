"""MPI_Status equivalent."""

from __future__ import annotations

from dataclasses import dataclass, field

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Status:
    """Receive/probe result metadata (mutable, filled in by the runtime)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes: int = 0
    cancelled: bool = False
    error: int = 0

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count(self, extent: int = 1) -> int:
        """Element count for a datatype of the given extent."""
        if extent <= 0:
            raise ValueError(f"extent must be positive, got {extent}")
        return self.nbytes // extent

    def fill_from(self, other: "Status") -> None:
        self.source = other.source
        self.tag = other.tag
        self.nbytes = other.nbytes
        self.cancelled = other.cancelled
        self.error = other.error
