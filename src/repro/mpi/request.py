"""Nonblocking-operation requests (MPI_Request)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.mpi.status import Status
from repro.simnet.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.engine import SimEngine


class Request:
    """Handle for a pending isend/irecv.

    ``wait()`` is a generator (simulation processes ``yield from`` it);
    ``test()`` is an immediate poll. Completed receives carry the payload as
    the request's value and fill :attr:`status`.
    """

    def __init__(self, env: "SimEngine", kind: str) -> None:
        self.env = env
        self.kind = kind  # "send" | "recv"
        self.event: Event = Event(env)
        self.status = Status()

    @property
    def completed(self) -> bool:
        return self.event.triggered

    def test(self, status: Status | None = None) -> tuple[bool, Any]:
        """Poll for completion: ``(flag, value)`` without blocking."""
        if not self.event.triggered:
            return False, None
        if not self.event.ok:
            raise self.event.value
        if status is not None:
            status.fill_from(self.status)
        return True, self.event.value

    def wait(self, status: Status | None = None) -> Generator["Event", Any, Any]:
        """Generator completing with the operation's value."""
        value = yield self.event
        if status is not None:
            status.fill_from(self.status)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.completed else "pending"
        return f"<Request {self.kind} {state}>"


def wait_all(
    env: "SimEngine", requests: list[Request]
) -> Generator["Event", Any, list[Any]]:
    """Generator completing when every request completes (MPI_Waitall)."""
    results = []
    for req in requests:
        value = yield from req.wait()
        results.append(value)
    return results


def wait_any(
    env: "SimEngine", requests: list[Request]
) -> Generator["Event", Any, tuple[int, Any]]:
    """Generator completing with ``(index, value)`` of the first completion."""
    if not requests:
        raise ValueError("wait_any of no requests")
    for i, req in enumerate(requests):
        if req.completed:
            flag, value = req.test()
            return i, value
    yield env.any_of([r.event for r in requests])
    for i, req in enumerate(requests):
        if req.completed:
            flag, value = req.test()
            return i, value
    raise AssertionError("any_of fired with no completed request")
