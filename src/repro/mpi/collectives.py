"""Collective algorithms implemented over point-to-point messages.

Implementing collectives on top of the same timed pt2pt layer (instead of
closed-form cost functions) means collective timing automatically reflects
message sizes, tree depth and NIC contention — the paper's launch path uses
``MPI_Allgather`` across workers, so this matters for the Fig-3 flow.

Algorithms (standard choices, cf. MPICH/MVAPICH):

* barrier    — dissemination (⌈log2 n⌉ rounds)
* bcast      — binomial tree
* gather     — linear fan-in to root (root incast is physical and real)
* scatter    — linear fan-out from root
* allgather  — ring (n-1 steps, large-message friendly)
* reduce     — binomial tree fan-in with operator application
* allreduce  — reduce + bcast
* alltoall   — shifted pairwise exchange (n-1 rounds)
* alltoallv  — shifted pairwise exchange with per-peer payload sizes
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Sequence

from repro.mpi.errors import CommError, MPIError, WorldAbortedError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import Comm, Intercomm, Intracomm


def _default_op(a: Any, b: Any) -> Any:
    return a + b


def barrier(comm: "Intracomm") -> Generator:
    """Dissemination barrier: round k exchanges with rank ± 2^k."""
    tag = comm._next_coll_tag()
    rank, size = comm.rank, comm.size
    if size == 1:
        return
    k = 1
    while k < size:
        dst = (rank + k) % size
        src = (rank - k) % size
        sreq = comm._coll_isend(None, dst, tag)
        yield from comm._coll_recv(src, tag)
        yield from sreq.wait()
        k <<= 1


def bcast(comm: "Intracomm", obj: Any, root: int) -> Generator:
    """Binomial-tree broadcast; every rank returns the root's object."""
    tag = comm._next_coll_tag()
    rank, size = comm.rank, comm.size
    if not 0 <= root < size:
        raise CommError(f"bcast root {root} out of range")
    if size == 1:
        return obj
    vrank = (rank - root) % size  # virtual rank with root at 0
    value = obj if rank == root else None

    # Receive from parent (highest set bit of vrank).
    if vrank != 0:
        mask = 1
        while mask <= vrank:
            mask <<= 1
        mask >>= 1
        parent = ((vrank - mask) + root) % size
        value = yield from comm._coll_recv(parent, tag)

    # Forward to children.
    mask = 1
    while mask <= vrank:
        mask <<= 1
    reqs = []
    while mask < size:
        child_v = vrank + mask
        if child_v < size:
            child = (child_v + root) % size
            reqs.append(comm._coll_isend(value, child, tag))
        mask <<= 1
    for req in reqs:
        yield from req.wait()
    return value


def gather(comm: "Intracomm", obj: Any, root: int) -> Generator:
    """Linear gather; root returns the rank-ordered list, others None."""
    tag = comm._next_coll_tag()
    rank, size = comm.rank, comm.size
    if not 0 <= root < size:
        raise CommError(f"gather root {root} out of range")
    if rank != root:
        yield from comm._coll_send(obj, root, tag)
        return None
    out: list[Any] = [None] * size
    out[rank] = obj
    for src in range(size):
        if src != root:
            out[src] = yield from comm._coll_recv(src, tag)
    return out


def scatter(comm: "Intracomm", objs: Sequence[Any] | None, root: int) -> Generator:
    """Linear scatter; every rank returns its element of the root's list."""
    tag = comm._next_coll_tag()
    rank, size = comm.rank, comm.size
    if rank == root:
        if objs is None or len(objs) != size:
            raise CommError(
                f"scatter at root needs exactly {size} items, got "
                f"{None if objs is None else len(objs)}"
            )
        reqs = []
        for dst in range(size):
            if dst != root:
                reqs.append(comm._coll_isend(objs[dst], dst, tag))
        for req in reqs:
            yield from req.wait()
        return objs[rank]
    value = yield from comm._coll_recv(root, tag)
    return value


def allgather(comm: "Intracomm", obj: Any) -> Generator:
    """Ring allgather; every rank returns the rank-ordered list."""
    tag = comm._next_coll_tag()
    rank, size = comm.rank, comm.size
    out: list[Any] = [None] * size
    out[rank] = obj
    if size == 1:
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    # Step s forwards the item that originated at rank - s.
    for s in range(size - 1):
        send_idx = (rank - s) % size
        sreq = comm._coll_isend((send_idx, out[send_idx]), right, tag)
        src_idx, value = yield from comm._coll_recv(left, tag)
        out[src_idx] = value
        yield from sreq.wait()
    return out


def reduce(
    comm: "Intracomm", obj: Any, op: Callable[[Any, Any], Any] | None, root: int
) -> Generator:
    """Binomial-tree reduction; root returns the combined value."""
    op = op or _default_op
    tag = comm._next_coll_tag()
    rank, size = comm.rank, comm.size
    if not 0 <= root < size:
        raise CommError(f"reduce root {root} out of range")
    vrank = (rank - root) % size
    value = obj
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            yield from comm._coll_send(value, parent, tag)
            return None
        child_v = vrank | mask
        if child_v < size:
            child = (child_v + root) % size
            other = yield from comm._coll_recv(child, tag)
            value = op(value, other)
        mask <<= 1
    return value


def allreduce(
    comm: "Intracomm", obj: Any, op: Callable[[Any, Any], Any] | None
) -> Generator:
    """Reduce to rank 0, then broadcast the result."""
    value = yield from reduce(comm, obj, op, 0)
    value = yield from bcast(comm, value, 0)
    return value


def alltoall(comm: "Intracomm", objs: Sequence[Any]) -> Generator:
    """Shifted pairwise exchange; rank i returns [obj_from_0, ..., obj_from_n-1]."""
    rank, size = comm.rank, comm.size
    if len(objs) != size:
        raise CommError(f"alltoall needs exactly {size} items, got {len(objs)}")
    tag = comm._next_coll_tag()
    out: list[Any] = [None] * size
    out[rank] = objs[rank]
    for s in range(1, size):
        dst = (rank + s) % size
        src = (rank - s) % size
        sreq = comm._coll_isend(objs[dst], dst, tag)
        out[src] = yield from comm._coll_recv(src, tag)
        yield from sreq.wait()
    return out


def alltoallv(
    comm: "Intracomm",
    objs: Sequence[Any],
    nbytes: Sequence[int] | None = None,
    tag: int | None = None,
    trace_parent: Any = None,
    ranks: Sequence[int] | None = None,
) -> Generator:
    """Variable-sized shifted pairwise exchange (MPI_Alltoallv).

    ``objs`` (and the optional per-slot ``nbytes`` size overrides) are
    indexed by communicator rank and must have exactly ``comm.size``
    entries.  Zero-size slots are still exchanged as zero-byte messages,
    so the round schedule — round ``s`` pairs ``dst=(me+s)%k`` with
    ``src=(me-s)%k`` over the participating rank list — is a pure
    function of ``(ranks, size)``, never of payload sizes; figure rows
    stay seed-reproducible no matter how skewed the traffic matrix is.
    The self slot is delivered directly (``out[rank] is objs[rank]``)
    before any wire traffic.

    ``ranks`` names the participating subset (default: every rank) and
    must be identical on every caller — the ULFM-style shrunken schedule
    the collective shuffle transport uses for multi-tenant executor
    subsets and after rank failures.  ``tag`` pins the matching tag
    explicitly so concurrent exchanges on one communicator cannot
    cross-match; by default it draws from the per-handle collective
    sequence (which then must advance identically on every rank).

    ``trace_parent`` threads causal tracing through the rounds: each
    per-peer send gets a child span recorded via ``causal.send`` and
    carried on the envelope, so the matching engine's ``mpi.match``
    closes it in the flight recording.  Tracing never schedules —
    traced and untraced runs are byte-identical in time.

    Fault semantics: a participant dying mid-exchange fails this call on
    every surviving rank with the first error observed — but only after
    the full round schedule has been driven, so surviving pairs still
    exchange and nobody hangs waiting for a peer that bailed out early.
    A world abort re-raises immediately (every pending op fails anyway).
    """
    from repro.util.serialization import sizeof

    rank, size = comm.rank, comm.size
    if len(objs) != size:
        raise CommError(f"alltoallv needs exactly {size} items, got {len(objs)}")
    if nbytes is not None and len(nbytes) != size:
        raise CommError(
            f"alltoallv nbytes needs exactly {size} entries, got {len(nbytes)}"
        )
    if ranks is None:
        ranks = range(size)
    ranks = list(ranks)
    if len(set(ranks)) != len(ranks):
        raise CommError(f"alltoallv ranks contains duplicates: {ranks}")
    if any(not 0 <= r < size for r in ranks):
        raise CommError(f"alltoallv ranks out of range for size {size}: {ranks}")
    try:
        me = ranks.index(rank)
    except ValueError:
        raise CommError(
            f"alltoallv caller rank {rank} not in participating ranks {ranks}"
        ) from None
    if tag is None:
        tag = comm._next_coll_tag()
    causal = comm.proc.env.causal
    group = comm._dest_group()
    out: list[Any] = [None] * size
    out[rank] = objs[rank]
    k = len(ranks)
    first_error: MPIError | None = None
    for s in range(1, k):
        dst = ranks[(me + s) % k]
        src = ranks[(me - s) % k]
        size_dst = None if nbytes is None else int(nbytes[dst])
        ctx = None
        if causal.enabled:
            ctx = causal.child(trace_parent)
            causal.send(
                ctx,
                0,
                size_dst if size_dst is not None else sizeof(objs[dst]),
                leg="mpi-coll",
                round=s,
                dst=dst,
            )
        sreq = comm.proc._isend(
            group.gid_of(dst),
            rank,
            comm.desc.ctx_coll,
            tag,
            objs[dst],
            size_dst,
            trace_ctx=ctx,
        )
        rreq = comm.proc._irecv(src, tag, comm.desc.ctx_coll)
        try:
            out[src] = yield from rreq.wait()
        except WorldAbortedError:
            raise
        except MPIError as exc:
            if first_error is None:
                first_error = exc
        try:
            yield from sreq.wait()
        except WorldAbortedError:
            raise
        except MPIError as exc:
            if first_error is None:
                first_error = exc
    if first_error is not None:
        raise first_error
    return out


# -- intercommunicator collectives ------------------------------------------

def inter_barrier(comm: "Intercomm") -> Generator:
    """Barrier across both groups: leaders exchange, then local fan-out.

    The local fan-out reuses the pt2pt layer directly (the intercomm has no
    intracomm handle for its local group), with the collective context so
    user traffic can't interfere.
    """
    tag = comm._next_coll_tag()
    rank = comm.rank
    local_group = comm.desc.local_group
    size = local_group.size

    # Fan-in to the local leader (rank 0 of each group).
    if rank != 0:
        yield from _local_send(comm, None, 0, tag)
        yield from _local_recv(comm, 0, tag)
        return
    for src in range(1, size):
        yield from _local_recv(comm, src, tag)
    # Leaders exchange across the bridge (collective context, remote rank 0).
    sreq = comm._coll_isend(None, 0, tag)
    yield from comm._coll_recv(0, tag)
    yield from sreq.wait()
    # Fan-out.
    for dst in range(1, size):
        yield from _local_send(comm, None, dst, tag)


def inter_bcast(
    comm: "Intercomm", obj: Any, root_rank: int, is_root_group: bool
) -> Generator:
    """Broadcast from ``root_rank`` of the root group to all remote ranks.

    Root-group ranks other than the root return None (they do not
    participate beyond the call); remote ranks return the object.
    """
    tag = comm._next_coll_tag()
    if is_root_group:
        if comm.rank != root_rank:
            return None
        # Send to the remote leader, who distributes locally.
        yield from comm._coll_send(obj, 0, tag)
        return obj
    # Remote group: leader receives then fans out over local pt2pt.
    local_size = comm.desc.local_group.size
    if comm.rank == 0:
        value = yield from comm._coll_recv(root_rank, tag)
        for dst in range(1, local_size):
            yield from _local_send(comm, value, dst, tag)
        return value
    value = yield from _local_recv(comm, 0, tag)
    return value


def _local_send(comm: "Intercomm", obj: Any, dest: int, tag: int) -> Generator:
    dst_gid = comm.desc.local_group.gid_of(dest)
    yield from comm.proc._send(dst_gid, comm.rank, comm.desc.ctx_coll, tag, obj, None)


def _local_recv(comm: "Intercomm", source: int, tag: int) -> Generator:
    req = comm.proc._irecv(source, tag, comm.desc.ctx_coll)
    value = yield from req.wait()
    return value
