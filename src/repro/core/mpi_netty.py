"""The MPI-based Netty transport: write/read paths for both designs.

**MPI4Spark-Optimized** (paper Sec. VI-E): only ``ChunkFetchSuccess`` and
``StreamResponse`` bodies travel over MPI. The frame *header* still goes
over the Java socket; the receiving ChannelHandler parses the header
(:func:`repro.spark.messages.peek_message_type`) and triggers a blocking
``MPI_Recv`` for the body on the event-loop thread.

**MPI4Spark-Basic** (paper Sec. VI-D): *every* message goes over MPI; the
socket is used only for connection establishment. The selector loop is
replaced by a non-blocking ``selectNow`` + ``MPI_Iprobe`` polling loop
(:class:`MpiBasicEventLoop`), whose constant polling is the design's
documented weakness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.core.endpoint import CommBinding
from repro.core.handshake import ATTR_BINDING, ATTR_TAG, MpiHandshakeHandler
from repro.mpi.errors import MPIError
from repro.netty.channel import Channel
from repro.netty.eventloop import READ_EVENT_COST_S, EventLoop
from repro.netty.frame import WireFrame
from repro.netty.handler import ChannelHandler
from repro.spark.messages import MPI_OPTIMIZED_BODY_TYPES, peek_message_type
from repro.util.units import US

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.endpoint import MpiEndpoint
    from repro.simnet.events import Event

# Basic-design polling costs (Sec. VI-D): one selectNow + one MPI_Iprobe
# per registered channel, every iteration, forever.
SELECT_NOW_COST_S = 0.5 * US
IPROBE_COST_S = 0.3 * US
# Average message-discovery delay of the busy-poll (half a poll period is
# charged when the simulated loop wakes from idle; the full-core burn is
# modeled separately by the executor's polling-core tax).
BASIC_POLL_PERIOD_S = 5.0 * US


def _binding_of(channel: Channel) -> CommBinding:
    binding = channel.attributes.get(ATTR_BINDING)
    if binding is None:
        raise RuntimeError(
            f"channel {channel.id} used for MPI transport before rank handshake"
        )
    return binding


def _mpi_isend(channel: Channel, payload: Any, nbytes: int, trace_ctx=None) -> None:
    binding = _binding_of(channel)
    tag = channel.attributes[ATTR_TAG]
    endpoint: "MpiEndpoint" = channel.event_loop.mpi_endpoint
    endpoint.proc._isend(
        binding.peer_gid,
        binding.comm.rank,
        binding.context_id,
        tag,
        payload,
        nbytes,
        trace_ctx=trace_ctx,
    )


# ---------------------------------------------------------------------------
# MPI4Spark-Optimized
# ---------------------------------------------------------------------------

def optimized_transport_write(channel: Channel, msg: Any, promise: "Event") -> None:
    """Outbound: split MessageWithHeader — header on socket, body on MPI."""
    if isinstance(msg, WireFrame) and msg.body_nbytes > 0:
        tag, body_nbytes = peek_message_type(msg)
        if tag in MPI_OPTIMIZED_BODY_TYPES:
            header_only = WireFrame(header=msg.header, body=None, body_nbytes=0)
            body_ctx = None
            causal = channel.env.causal
            if causal.enabled and msg.trace_ctx is not None:
                # The split gives the MPI body leg its own span, a child of
                # the message's span; the header keeps the original context
                # so the receive side can join the two back together.
                header_only.trace_ctx = msg.trace_ctx
                body_ctx = causal.child(msg.trace_ctx)
                causal.send(
                    body_ctx, tag, body_nbytes,
                    channel=channel.id.as_long_text(), leg="mpi-body",
                )
            channel.socket.send(header_only, len(msg.header))
            _mpi_isend(channel, msg.body, body_nbytes, trace_ctx=body_ctx)
            try:
                c_hdr_msgs, c_hdr_bytes, c_body_msgs, c_body_bytes = (
                    channel._mpi_opt_counters
                )
            except AttributeError:
                m = channel.env.metrics
                c_hdr_msgs = m.counter("transport.mpi-opt.header.messages")
                c_hdr_bytes = m.counter("transport.mpi-opt.header.bytes")
                c_body_msgs = m.counter("transport.mpi-opt.body.messages")
                c_body_bytes = m.counter("transport.mpi-opt.body.bytes")
                channel._mpi_opt_counters = (
                    c_hdr_msgs,
                    c_hdr_bytes,
                    c_body_msgs,
                    c_body_bytes,
                )
            c_hdr_msgs.inc()
            c_hdr_bytes.inc(len(msg.header))
            c_body_msgs.inc()
            c_body_bytes.inc(body_nbytes)
            if not promise.triggered:
                promise.succeed()
            return
    # Everything else rides the socket unchanged (vanilla path).
    Channel._transport_write(channel, msg, promise)


class MpiBodyReceiveHandler(ChannelHandler):
    """Inbound: parse headers; trigger MPI_Recv for stripped bodies.

    Sits right after the handshake handler, before the MessageDecoder —
    the Fig-7 position. The receive blocks the event-loop thread via
    :meth:`EventLoop.run_blocking`, exactly as a blocking ``MPI_Recv``
    inside a Netty ChannelHandler would.
    """

    def channel_read(self, ctx, msg):
        if isinstance(msg, WireFrame) and msg.body is None:
            tag, body_nbytes = peek_message_type(msg)
            if tag in MPI_OPTIMIZED_BODY_TYPES and body_nbytes > 0:
                ctx.channel.event_loop.run_blocking(
                    self._receive_body(ctx, msg, body_nbytes)
                )
                return
        ctx.fire_channel_read(msg)

    def _receive_body(self, ctx, frame: WireFrame, body_nbytes: int) -> Generator:
        channel = ctx.channel
        binding = _binding_of(channel)
        tag = channel.attributes[ATTR_TAG]
        endpoint: "MpiEndpoint" = channel.event_loop.mpi_endpoint
        req = endpoint.proc._irecv(binding.peer_rank, tag, binding.context_id)
        try:
            body = yield from req.wait()
        except MPIError as exc:
            # The body will never arrive (peer rank died / world aborted):
            # surface it so the response handler can fail outstanding fetches.
            channel.pipeline.fire_exception_caught(exc)
            return
        frame.body = body
        frame.body_nbytes = body_nbytes
        if frame.trace_ctx is not None:
            # Header (socket) and body (MPI) legs reunite here — the join
            # edge of the causal model; the decoder's msg.recv follows.
            channel.env.causal.join(
                frame.trace_ctx, body_nbytes, channel=channel.id.as_long_text()
            )
        ctx.fire_channel_read(frame)


# ---------------------------------------------------------------------------
# MPI4Spark-Basic
# ---------------------------------------------------------------------------

def basic_transport_write(channel: Channel, msg: Any, promise: "Event") -> None:
    """Outbound: ALL messages over MPI point-to-point (Sec. VI-D)."""
    if isinstance(msg, WireFrame):
        _mpi_isend(channel, msg, msg.nbytes, trace_ctx=msg.trace_ctx)
        try:
            c_msgs, c_bytes = channel._mpi_basic_counters
        except AttributeError:
            m = channel.env.metrics
            c_msgs = m.counter("transport.mpi-basic.messages")
            c_bytes = m.counter("transport.mpi-basic.bytes")
            channel._mpi_basic_counters = (c_msgs, c_bytes)
        c_msgs.inc()
        c_bytes.inc(msg.nbytes)
        if not promise.triggered:
            promise.succeed()
        return
    # Non-frame payloads (handshake envelopes) still use the socket.
    Channel._transport_write(channel, msg, promise)


class MpiBasicEventLoop(EventLoop):
    """The Basic design's modified selector loop (paper Fig. 5 + Sec. VI-D).

    The blocking ``select`` is replaced by ``selectNow`` so the loop never
    parks while MPI messages might be pending; each iteration additionally
    ``MPI_Iprobe``-s every bound channel. The per-iteration costs are
    charged on the loop thread — with many idle iterations, this is the
    compute-starving behaviour the paper measured.
    """

    def __init__(self, env, name: str = "mpi-basic-loop") -> None:
        super().__init__(env, name)
        self.mpi_channels: list[Channel] = []
        self.iprobe_hits = 0
        # Cumulative CPU seconds spent in selectNow + MPI_Iprobe rounds —
        # the measured "polling tax" reported next to Fig 9. Accumulated
        # as plain floats (this loop busy-polls, so it is the hottest
        # path in the simulation) and published at snapshot time.
        self._poll_tax_s = 0.0
        self._n_poll_rounds = 0
        self._c_poll_tax = env.metrics.counter(f"netty.loop.{name}.poll_tax_s")
        self._c_poll_rounds = env.metrics.counter(
            f"netty.loop.{name}.poll_rounds"
        )
        # Idle-park plumbing: one *persistent* waiter per signal source
        # (socket, probe bucket, task queue, wakeup queue) instead of a
        # fresh fan-out every park. Only spent waiters are re-armed, so a
        # park costs O(sources fired since last park), not O(sources).
        self._park_ev: "Event | None" = None
        self._park_waiters: dict = {}
        # (channel, binding, tag) rows mirroring mpi_channels; rebuilt
        # lazily when a bind/unbind invalidates it (order must match —
        # the iprobe drain order is simulation-visible).
        self._poll_cache: list = []
        self._poll_dirty = True
        self._endpoint = None

    def _on_park_signal(self, key, ev) -> None:
        """A signal-source waiter fired: wake the park, ignore stale fires.

        A waiter replaced by a newer one for the same source (it fired
        during a busy round and was re-armed at the next park) must not
        wake a *later* park — that would add a spurious poll round and
        change simulated time.
        """
        entry = self._park_waiters.get(key)
        if entry is None or entry[1] is not ev:
            return
        park = self._park_ev
        if park is not None and not park.triggered:
            park.succeed()

    def _arm_park_waiter(self, key, source, make) -> None:
        # ``key`` is id(source) for object sources (SelectionKey is
        # unhashable); the entry pins ``source`` alive so a recycled id
        # can never alias a stale waiter.
        waiters = self._park_waiters
        entry = waiters.get(key)
        if entry is None or entry[1].triggered:
            ev = make()
            waiters[key] = (source, ev)
            ev.add_callback(lambda e, k=key: self._on_park_signal(k, e))

    def _poll_rows(self) -> list:
        """The (channel, binding, tag) drain list, cached across rounds.

        ``channel_inactive`` removes channels from ``mpi_channels``
        directly, so a length mismatch also invalidates the cache.
        """
        rows = self._poll_cache
        if self._poll_dirty or len(rows) != len(self.mpi_channels):
            rows = self._poll_cache = [
                (
                    channel,
                    channel.attributes.get(ATTR_BINDING),
                    channel.attributes.get(ATTR_TAG),
                )
                for channel in self.mpi_channels
            ]
            self._poll_dirty = False
        return rows

    def _publish_metrics(self) -> None:
        super()._publish_metrics()
        self._c_poll_tax.value = self._poll_tax_s
        self._c_poll_rounds.value = float(self._n_poll_rounds)

    def on_mpi_channel_bound(self, channel: Channel) -> None:
        if channel in self.mpi_channels:
            return  # idempotent: re-handshakes must not double-poll
        self.mpi_channels.append(channel)
        self._poll_dirty = True
        # A parked loop must start iprobing the new channel.
        self.selector.wakeup()

    def _run(self) -> Generator:
        env = self.env
        while self.running:
            # Poll round: selectNow + one MPI_Iprobe per bound channel.
            t_busy = env.now
            poll_cost = SELECT_NOW_COST_S + len(self.mpi_channels) * IPROBE_COST_S
            yield env.timeout(poll_cost)
            self._poll_tax_s += poll_cost
            self._n_poll_rounds += 1
            self._n_iterations += 1
            keys = self.selector.select_now()
            for key in keys:
                if key.is_acceptable():
                    yield from self._accept_all(key)
                elif key.is_readable():
                    yield from self._read_all(key.channel)

            # Drain every MPI-bound channel that iprobe reports ready.
            progressed = bool(keys)
            endpoint = self._endpoint
            if endpoint is None:
                endpoint = self._endpoint = getattr(self, "mpi_endpoint", None)
            if endpoint is not None:
                matching = endpoint.proc.matching
                for channel, binding, tag in self._poll_rows():
                    if not channel.active:
                        self.mpi_channels.remove(channel)
                        self._poll_dirty = True
                        continue
                    if binding is None or tag is None:
                        continue
                    while matching.iprobe(
                        binding.peer_rank, tag, binding.context_id
                    ):
                        self.iprobe_hits += 1
                        progressed = True
                        req = endpoint.proc._irecv(
                            binding.peer_rank, tag, binding.context_id
                        )
                        try:
                            frame = yield from req.wait()
                        except MPIError as exc:
                            channel.pipeline.fire_exception_caught(exc)
                            break
                        self._n_messages_read += 1
                        yield env.timeout(READ_EVENT_COST_S)
                        try:
                            channel.pipeline.fire_channel_read(frame)
                        except Exception as exc:
                            channel.pipeline.fire_exception_caught(exc)
                        yield from self._drain_blocking()

            yield from self._drain_blocking()
            while self.tasks.items:
                ev = self.tasks.get()
                assert ev.triggered
                yield env.timeout(SELECT_NOW_COST_S)
                ev.value()
                yield from self._drain_blocking()
                progressed = True

            self._busy_s += env.now - t_busy
            if not progressed:
                # Idle: the real thread keeps spinning (its CPU burn is the
                # executor's polling-core tax); the *simulation* parks until
                # something can arrive, then charges the average discovery
                # delay of a poll period. This keeps wall time bounded
                # without distorting the design's latency behaviour. Neither
                # the park nor the discovery delay counts as busy_s — the
                # modeled spin burn is already the polling-core tax.
                yield from self._wait_for_signal()
                yield env.timeout(BASIC_POLL_PERIOD_S / 2)

    def _wait_for_signal(self) -> Generator:
        """Park until any signal source fires (message, task, wakeup).

        Sources keep one persistent waiter each (``_arm_park_waiter``):
        a pending waiter means the source has been quiet since it was
        armed, so only spent waiters need re-arming — the park's cost is
        proportional to the signals since the last park, not to the
        number of channels. A waiter for a source that is already ready
        triggers at creation, exactly like the per-park fan-out it
        replaces, so wake timing (and thus simulated time) is unchanged.
        """
        env = self.env
        arm = self._arm_park_waiter
        for key in self.selector.keys:
            channel = key.channel
            if channel is not None:
                arm(id(key), key, channel.socket.when_readable)
            elif key.listener is not None:
                arm(id(key), key, key.listener.when_acceptable)
        endpoint = self._endpoint
        if endpoint is None:
            endpoint = self._endpoint = getattr(self, "mpi_endpoint", None)
        if endpoint is not None:
            matching = endpoint.proc.matching
            for channel, binding, tag in self._poll_rows():
                if binding is None or tag is None:
                    continue
                arm(
                    id(channel),
                    channel,
                    lambda m=matching, b=binding, t=tag: m.probe_event(
                        b.peer_rank, t, b.context_id
                    ),
                )
        arm("tasks", None, self.tasks.when_nonempty)
        arm("wakeups", None, self.selector._wakeups.when_nonempty)
        park = env.event()
        self._park_ev = park
        yield park
        self._park_ev = None
        self.selector._drain_wakeups()


class NotifyingHandshakeHandler(MpiHandshakeHandler):
    """Handshake handler that also registers bound channels with the loop
    (the Basic design's loop must know which channels to iprobe)."""

    def channel_read(self, ctx, msg):
        had_binding = ATTR_BINDING in ctx.channel.attributes
        super().channel_read(ctx, msg)
        if not had_binding and ATTR_BINDING in ctx.channel.attributes:
            loop = ctx.channel.event_loop
            hook = getattr(loop, "on_mpi_channel_bound", None)
            if hook is not None:
                hook(ctx.channel)

    def channel_inactive(self, ctx):
        loop = ctx.channel.event_loop
        mpi_channels = getattr(loop, "mpi_channels", None)
        if mpi_channels is not None and ctx.channel in mpi_channels:
            mpi_channels.remove(ctx.channel)
        super().channel_inactive(ctx)
