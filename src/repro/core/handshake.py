"""Rank exchange at connection establishment (paper Sec. VI-B).

"The ranks of MPI processes are identified and communicated through the
Netty Java sockets using PooledDirectByteBufs. The communicator types are
signified using single bytes and are also communicated during the
connection establishment phase."

The client sends a :class:`RankAnnouncement` (encoded into a pooled direct
ByteBuf) immediately after connecting; the server's handshake handler maps
``ChannelId → (rank, communicator kind)`` and replies with its own
announcement. Only after both sides are mapped does MPI-based data flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.netty.bytebuf import ByteBuf
from repro.netty.channel import Channel
from repro.netty.handler import ChannelHandler

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.endpoint import MpiEndpoint

# gid (8) + tag (8) + kind (1)
HANDSHAKE_WIRE_BYTES = 17

ATTR_BINDING = "mpi_binding"
ATTR_TAG = "mpi_tag"
ATTR_DONE = "mpi_handshake_done"


class HandshakeError(RuntimeError):
    """Rank exchange failed (dead peer, no shared communicator, or the
    channel closed before the reply arrived)."""


@dataclass(frozen=True)
class RankAnnouncement:
    """One side's identity: MPI gid, channel tag base, communicator kind."""

    gid: int
    tag: int
    kind: int
    reply_expected: bool

    def encode(self, channel: Channel) -> ByteBuf:
        buf = channel.alloc.direct_buffer()  # the paper's PooledDirectByteBuf
        buf.write_long(self.gid)
        buf.write_long(self.tag)
        buf.write_byte(self.kind)
        buf.write_byte(1 if self.reply_expected else 0)
        return buf

    @staticmethod
    def decode(buf: ByteBuf) -> "RankAnnouncement":
        return RankAnnouncement(
            gid=buf.read_long(),
            tag=buf.read_long(),
            kind=buf.read_byte(),
            reply_expected=buf.read_byte() == 1,
        )


class _HandshakeEnvelope:
    """Marks a socket payload as a handshake buffer (so the handler can
    distinguish it from application frames without sniffing bytes)."""

    __slots__ = ("buf",)

    def __init__(self, buf: ByteBuf) -> None:
        self.buf = buf


class MpiHandshakeHandler(ChannelHandler):
    """First inbound handler on every MPI-transport channel.

    Consumes handshake envelopes, resolves the communicator binding via the
    event loop's :class:`~repro.core.endpoint.MpiEndpoint`, and completes
    the channel's handshake event. Application frames pass through.
    """

    def channel_read(self, ctx, msg):
        if not isinstance(msg, _HandshakeEnvelope):
            ctx.fire_channel_read(msg)
            return
        channel = ctx.channel
        ann = RankAnnouncement.decode(msg.buf)
        endpoint: "MpiEndpoint" = channel.event_loop.mpi_endpoint
        world = endpoint.proc.world
        if (
            not endpoint.proc.alive
            or world.aborted
            or ann.gid in world.dead
        ):
            # Handshaking with (or as) a dead rank: refuse by closing; the
            # peer sees channel_inactive and its pending handshake fails.
            channel.close()
            return
        try:
            binding = endpoint.resolve(ann.gid)
        except Exception:
            channel.close()
            return
        channel.attributes[ATTR_BINDING] = binding
        channel.attributes[ATTR_TAG] = ann.tag
        if ann.reply_expected:
            reply = RankAnnouncement(
                gid=endpoint.proc.gid, tag=ann.tag, kind=binding.kind, reply_expected=False
            )
            channel.socket.send(
                _HandshakeEnvelope(reply.encode(channel)), HANDSHAKE_WIRE_BYTES
            )
        done = channel.attributes.get(ATTR_DONE)
        if done is not None and not done.triggered:
            done.succeed(binding)

    def channel_inactive(self, ctx):
        # Channel teardown releases its rank mapping; a handshake still in
        # flight completes in error rather than hanging its waiters.
        channel = ctx.channel
        channel.attributes.pop(ATTR_BINDING, None)
        done = channel.attributes.get(ATTR_DONE)
        if done is not None and not done.triggered:
            done.fail(
                HandshakeError(
                    f"channel {channel.id} closed before rank handshake completed"
                )
            )
        ctx.fire_channel_inactive()


def initiate_handshake(channel: Channel, endpoint: "MpiEndpoint") -> None:
    """Client side: announce our identity. The channel's tag base is its own
    unique ChannelId value, so concurrent channels between the same pair of
    processes never cross tags."""
    tag = channel.id._value
    channel.attributes[ATTR_TAG] = tag
    channel.attributes[ATTR_DONE] = channel.env.event()
    ann = RankAnnouncement(
        gid=endpoint.proc.gid, tag=tag, kind=0, reply_expected=True
    )
    channel.socket.send(_HandshakeEnvelope(ann.encode(channel)), HANDSHAKE_WIRE_BYTES)


def handshake_complete(channel: Channel):
    """Event that fires (with the binding) once the reply arrives."""
    return channel.attributes[ATTR_DONE]


def ensure_handshake(channel: Channel, endpoint: "MpiEndpoint") -> Generator:
    """Idempotent establishment: initiate once, then wait for completion.

    Pooled clients are shared by many concurrent tasks; only the first
    caller sends the announcement — later callers must join the same wait
    (a second initiation would orphan the first waiter's event).
    """
    done = channel.attributes.get(ATTR_DONE)
    if done is None:
        initiate_handshake(channel, endpoint)
        done = channel.attributes[ATTR_DONE]
    yield done
