"""MPI4Spark core: the paper's contribution.

* channel ↔ MPI-rank mapping established at connection time
  (:mod:`repro.core.handshake`, Sec. VI-B),
* communicator-kind resolution per channel (:mod:`repro.core.endpoint`),
* the MPI-based Netty write/read paths for both designs
  (:mod:`repro.core.mpi_netty`, Secs. VI-D/VI-E),
* the DPM launch flow that brings a Spark cluster up under ``mpiexec``
  (:mod:`repro.core.launcher`, Sec. V / Fig. 3).
"""

from repro.core.endpoint import (
    COMM_KIND_DPM,
    COMM_KIND_INTER,
    COMM_KIND_WORLD,
    CommBinding,
    MpiEndpoint,
)
from repro.core.handshake import (
    HANDSHAKE_WIRE_BYTES,
    MpiHandshakeHandler,
    RankAnnouncement,
    handshake_complete,
    initiate_handshake,
)
from repro.core.mpi_netty import (
    BASIC_POLL_PERIOD_S,
    IPROBE_COST_S,
    MpiBasicEventLoop,
    MpiBodyReceiveHandler,
    NotifyingHandshakeHandler,
    basic_transport_write,
    optimized_transport_write,
)

__all__ = [
    "MpiEndpoint",
    "CommBinding",
    "COMM_KIND_WORLD",
    "COMM_KIND_DPM",
    "COMM_KIND_INTER",
    "RankAnnouncement",
    "MpiHandshakeHandler",
    "NotifyingHandshakeHandler",
    "initiate_handshake",
    "handshake_complete",
    "HANDSHAKE_WIRE_BYTES",
    "MpiBodyReceiveHandler",
    "MpiBasicEventLoop",
    "optimized_transport_write",
    "basic_transport_write",
    "BASIC_POLL_PERIOD_S",
    "IPROBE_COST_S",
]
