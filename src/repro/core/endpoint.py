"""MPI identity of a Spark JVM process and communicator resolution.

Every Spark-cluster entity (master, driver, worker, executor) is one MPI
process in MPI4Spark. An entity holds several communicators — the wrapper
world (``MPI_COMM_WORLD``), the executors' ``DPM_COMM``, and the
parent/child intercommunicator — and each Netty channel must be bound to
*the right one*: "each Channel ... was mapped to both an MPI process rank
and a communicator type" (paper Sec. VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.mpi.communicator import Comm, Intercomm
from repro.mpi.errors import CommError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.runtime import MPIProcess

# Communicator-kind byte exchanged during connection establishment
# (paper: "communicator types are signified using single bytes").
COMM_KIND_WORLD = 0  # wrapper MPI_COMM_WORLD (master/driver/workers)
COMM_KIND_DPM = 1  # DPM_COMM (executor <-> executor)
COMM_KIND_INTER = 2  # parent <-> child intercommunicator

KIND_NAMES = {COMM_KIND_WORLD: "WORLD", COMM_KIND_DPM: "DPM", COMM_KIND_INTER: "INTER"}


@dataclass
class CommBinding:
    """A channel's resolved MPI route."""

    comm: Comm
    kind: int
    peer_gid: int
    peer_rank: int  # rank to address/match the peer by, within `comm`

    @property
    def context_id(self) -> int:
        return self.comm.desc.ctx_pt2pt


class MpiEndpoint:
    """One JVM's MPI process plus the communicators it can reach peers on."""

    def __init__(self, proc: "MPIProcess") -> None:
        self.proc = proc

    def _candidate_comms(self) -> list[tuple[Comm, int]]:
        out: list[tuple[Comm, int]] = []
        cw = self.proc.comm_world
        if cw is not None:
            kind = COMM_KIND_DPM if cw.name == "DPM_COMM" else COMM_KIND_WORLD
            out.append((cw, kind))
        pc = self.proc.parent_comm
        if pc is not None:
            out.append((pc, COMM_KIND_INTER))
        extra = getattr(self.proc, "extra_comms", None)
        if extra:
            for comm in extra:
                kind = COMM_KIND_INTER if isinstance(comm, Intercomm) else COMM_KIND_DPM
                out.append((comm, kind))
        return out

    def resolve(self, peer_gid: int) -> CommBinding:
        """Find the communicator (and the peer's rank on it) reaching ``peer_gid``."""
        for comm, kind in self._candidate_comms():
            remote = comm.desc.remote_group
            if remote is not None:
                if peer_gid in remote:
                    return CommBinding(comm, COMM_KIND_INTER, peer_gid, remote.rank_of(peer_gid))
            elif peer_gid in comm.desc.local_group:
                return CommBinding(comm, kind, peer_gid, comm.desc.local_group.rank_of(peer_gid))
        raise CommError(
            f"{self.proc.name} shares no communicator with gid {peer_gid}"
        )

    def register_intercomm(self, comm: Intercomm) -> None:
        """Attach an extra intercommunicator (e.g. the parent side of DPM)."""
        extra = getattr(self.proc, "extra_comms", None)
        if extra is None:
            extra = []
            self.proc.extra_comms = extra  # type: ignore[attr-defined]
        extra.append(comm)
