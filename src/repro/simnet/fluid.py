"""Flow-level (fluid) bandwidth sharing for bulk transfers.

Message-granularity FIFO serialization at NICs produces convoy effects
that packet-switched fabrics do not have: a megabyte transfer would block
an unrelated transfer for its full serialization time, idling the
receiver. Real NICs interleave at packet granularity, so concurrent flows
share bandwidth ~fairly. This module implements the standard flow-level
approximation:

* each *link* (one node direction for one protocol stack) has a capacity
  in bytes/second — the protocol's effective bandwidth, so e.g. all TCP
  flows into a node share the IPoIB stack's effective rate while MPI flows
  share the verbs path's;
* an active flow's rate is the minimum of its links' equal shares (exact
  max-min for the symmetric all-to-all patterns of a shuffle) — so a
  flow's rate depends *only on its own links' flow counts*;
* bookkeeping is lazy and local: starting/finishing a flow re-rates only
  the flows sharing its links, each flow's progress is drained on touch,
  and completions use per-flow timers cancelled on every re-rate. This keeps the
  cost per network event at O(flows on the affected links), which is what
  makes 32-worker shuffle simulations tractable.

Re-rating is the per-event hot path at scale: one shuffle wave re-rates
every flow sharing a NIC lane on every start/finish. Batches at or above
``FluidNetwork._VECTOR_MIN`` flows are computed with one numpy
gather/divide/reduce over per-link capacity and flow-count arrays instead
of a per-flow Python loop. Both paths produce bit-identical IEEE-754
rates: the vector path evaluates exactly ``cap[l] / n[l]`` per link and a
pairwise float64 min, the same operations the scalar path performs, and
timers are re-armed in the same ``sorted(fids)`` order either way.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Hashable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.engine import SimEngine
    from repro.simnet.events import Event

# A residual below this many bytes counts as finished (guards against
# float-time horizons that round to zero near large clock values).
_FINISH_SLACK_BYTES = 1e-3


class Flow:
    """One in-progress bulk transfer."""

    __slots__ = (
        "fid",
        "links",
        "lidx",
        "remaining",
        "rate",
        "last",
        "done",
        "timer",
        "cb",
    )

    def __init__(
        self,
        fid: int,
        links: tuple[Hashable, ...],
        lidx: tuple[int, ...],
        nbytes: float,
        done: "Event",
    ) -> None:
        self.fid = fid
        self.links = links
        self.lidx = lidx  # per-network dense link indices, parallel to links
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.last = 0.0  # sim time of the last progress drain
        self.done = done
        self.timer = None  # pending completion Timeout (cancelled on re-rate)
        # Persistent completion callback, attached to every timer this flow
        # arms (re-rates churn timers far faster than flows are created, so
        # one closure per flow beats one per arm). Stale timers cannot fire
        # — arming always cancels the predecessor — and the callback checks
        # timer identity anyway as a belt-and-braces guard.
        self.cb = None


class FluidNetwork:
    """Tracks active flows and drives their completions."""

    # Re-rate batches with at least this many flows take the numpy path;
    # smaller batches stay scalar (fixed array-build cost beats the loop
    # only once a handful of flows share the touched links). Tests pin
    # this to 1 / a large value to force either path.
    _VECTOR_MIN = 8

    def __init__(self, env: "SimEngine") -> None:
        self.env = env
        self.flows: dict[int, Flow] = {}
        self.link_flows: dict[Hashable, set[int]] = {}
        self.link_caps: dict[Hashable, float] = {}
        # Running sum of active flow rates per link, maintained at every
        # rate change / flow removal so utilization() is O(1) instead of
        # scanning link_flows.
        self.link_rate: dict[Hashable, float] = {}
        self.completed = 0
        # Flow ids are allocated per network (not process-global) so two
        # clusters built in the same process — parallel harness workers,
        # back-to-back tests — see identical fid sequences and therefore
        # identical sorted(fids) timer orders.
        self._next_fid = 0
        # Dense link registry backing the vectorized re-rate: link key ->
        # array index, with capacity / active-flow-count arrays kept in
        # lockstep with link_flows at every add/remove site.
        self.link_index: dict[Hashable, int] = {}
        self._caps_arr = np.zeros(16, dtype=np.float64)
        self._counts_arr = np.zeros(16, dtype=np.int64)
        # Time-weighted concurrency of bulk transfers (repro.obs).
        self._g_active = env.metrics.time_gauge("simnet.fluid.active_flows")
        self._c_flow_bytes = env.metrics.counter("simnet.fluid.flow_bytes")
        # Re-rate batch telemetry: plain ints on the hot path, published
        # lazily at snapshot time (same idiom as netty.loop.* counters).
        self._n_rerate_calls = 0
        self._n_rerate_flows = 0
        self._n_vector_batches = 0
        self._max_batch = 0
        m = env.metrics
        c_calls = m.counter("simnet.fluid.rerate.calls")
        c_flows = m.counter("simnet.fluid.rerate.flows")
        c_vec = m.counter("simnet.fluid.rerate.vector_batches")
        c_max = m.counter("simnet.fluid.rerate.max_batch")

        def _publish_rerate_stats() -> None:
            c_calls.value = float(self._n_rerate_calls)
            c_flows.value = float(self._n_rerate_flows)
            c_vec.value = float(self._n_vector_batches)
            c_max.value = float(self._max_batch)

        m.on_snapshot(_publish_rerate_stats)

    # -- public API ----------------------------------------------------------
    def transfer(self, links: list[tuple[Hashable, float]], nbytes: float) -> "Event":
        """Start a flow over ``[(link_key, capacity_Bps), ...]``.

        Returns an event triggering when the last byte has moved. A link's
        capacity is fixed by its first appearance; later values for the
        same key are ignored.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        done = self.env.event()
        if nbytes == 0:
            done.succeed()
            return done
        link_index = self.link_index
        keys = []
        lidx = []
        for key, cap in links:
            if cap <= 0:
                raise ValueError(f"link capacity must be positive, got {cap}")
            idx = link_index.get(key)
            if idx is None:
                idx = self._register_link(key, float(cap))
            keys.append(key)
            lidx.append(idx)
        fid = self._next_fid
        self._next_fid = fid + 1
        flow = Flow(fid, tuple(keys), tuple(lidx), nbytes, done)
        flow.cb = lambda ev, f=flow, on=self._on_timer: on(f, ev)
        flow.last = self.env.now
        self.flows[fid] = flow
        self._g_active.set(len(self.flows))
        self._c_flow_bytes.inc(nbytes)
        link_flows = self.link_flows
        counts = self._counts_arr
        for key, idx in zip(keys, lidx):
            sharing = link_flows[key]
            if fid not in sharing:
                sharing.add(fid)
                counts[idx] += 1
        # _affected() after registration already includes the new fid.
        self._rerate(self._affected(keys))
        return done

    @property
    def active_count(self) -> int:
        return len(self.flows)

    def abort_flows(self, link_pred, exc_factory) -> int:
        """Fail every active flow crossing a link matching ``link_pred``.

        Used on node failure: in-flight bulk transfers touching the dead
        node complete in error (their ``done`` event fails with
        ``exc_factory()``), and the freed capacity re-rates survivors.
        Returns the number of flows aborted.
        """
        victims = [
            flow
            for flow in self.flows.values()
            if any(link_pred(key) for key in flow.links)
        ]
        for flow in sorted(victims, key=lambda f: f.fid):
            del self.flows[flow.fid]
            self._unlink(flow)
            self._cancel_timer(flow)  # a cancelled timer's callback never runs
            flow.done.fail(exc_factory())
        self._g_active.set(len(self.flows))
        if victims:
            affected: set[int] = set()
            for flow in victims:
                affected |= self._affected(flow.links)
            self._rerate(affected)
        return len(victims)

    def utilization(self, link: Hashable) -> float:
        """Instantaneous share of a link's capacity in use.

        O(1): reads the running per-link rate sum maintained by _rerate
        and the removal paths instead of scanning the link's flows. The
        max(0, ·) clamps float cancellation residue near zero.
        """
        cap = self.link_caps.get(link)
        if not cap:
            return 0.0
        return max(self.link_rate.get(link, 0.0), 0.0) / cap

    # -- internals ----------------------------------------------------------
    def _register_link(self, key: Hashable, cap: float) -> int:
        idx = len(self.link_index)
        if idx >= len(self._caps_arr):
            self._caps_arr = np.concatenate([self._caps_arr, np.zeros_like(self._caps_arr)])
            self._counts_arr = np.concatenate(
                [self._counts_arr, np.zeros_like(self._counts_arr)]
            )
        self.link_index[key] = idx
        self._caps_arr[idx] = cap
        self.link_caps[key] = cap
        self.link_flows[key] = set()
        self.link_rate[key] = 0.0
        return idx

    def _unlink(self, flow: Flow) -> None:
        """Remove a departing flow from its links' sharing sets/counts."""
        link_flows = self.link_flows
        link_rate = self.link_rate
        counts = self._counts_arr
        fid = flow.fid
        rate = flow.rate
        for key, idx in zip(flow.links, flow.lidx):
            sharing = link_flows[key]
            if fid in sharing:
                sharing.remove(fid)
                counts[idx] -= 1
            link_rate[key] -= rate

    def _affected(self, keys) -> set[int]:
        """Fids of every flow sharing a link in ``keys``.

        May return a live internal sharing set on the single-link fast
        path — callers must treat the result as read-only. The dominant
        wire-path shape (exactly two links: one TX, one RX lane) gets a
        single ``a | b`` union with no intermediate garbage.
        """
        link_flows = self.link_flows
        if len(keys) == 2:
            k0, k1 = keys
            a = link_flows.get(k0)
            b = link_flows.get(k1)
            if a is None:
                return b if b is not None else set()
            if b is None:
                return a
            return a | b
        if len(keys) == 1:
            s = link_flows.get(keys[0])
            return s if s is not None else set()
        out: set[int] = set()
        for key in keys:
            s = link_flows.get(key)
            if s:
                out |= s
        return out

    def _touch(self, flow: Flow) -> None:
        """Drain progress since the flow's last update."""
        now = self.env.now
        dt = now - flow.last
        if dt > 0:
            flow.remaining -= flow.rate * dt
            if flow.remaining < 0:
                flow.remaining = 0.0
        flow.last = now

    def _rerate(self, fids) -> None:
        """Re-rate the given flows and (re-)arm their completion timers.

        Two coalesced passes per step: drain everyone's progress first,
        then compute the new rates and arm timers — one timer churn per
        affected flow per re-rate, with the superseded timer cancelled
        (tombstoned) instead of left to fire as a no-op. Batches of
        ``_VECTOR_MIN``+ flows compute all rates with one numpy
        gather/divide/min over the link arrays; the arming loop runs in
        the same order either way.
        """
        touched = []
        flows = self.flows
        now = self.env.now
        # sorted(fids) is load-bearing: _arm() below enqueues completion
        # timers, and the event heap breaks same-timestamp ties by
        # insertion sequence. Iterating a raw set would make timer order
        # (and thus simulated schedules) depend on set-iteration order,
        # breaking the byte-identical committed figure rows.
        for fid in sorted(fids):
            flow = flows.get(fid)
            if flow is None:
                continue
            dt = now - flow.last
            if dt > 0:
                flow.remaining -= flow.rate * dt
                if flow.remaining < 0:
                    flow.remaining = 0.0
            flow.last = now
            touched.append(flow)
        k = len(touched)
        if k == 0:
            return
        self._n_rerate_calls += 1
        self._n_rerate_flows += k
        if k > self._max_batch:
            self._max_batch = k
        link_rate = self.link_rate
        env = self.env
        cancel = env.cancel
        new_timeout = env.timeout
        if k >= self._VECTOR_MIN:
            # Vectorized path: gather each flow's links' cap/count pairs
            # in one shot. Wire flows always have exactly two links; mixed
            # batches fall back to a segmented min (reduceat).
            self._n_vector_batches += 1
            flat: list[int] = []
            uniform2 = True
            offsets: list[int] = []
            pos = 0
            for flow in touched:
                li = flow.lidx
                offsets.append(pos)
                flat.extend(li)
                pos += len(li)
                if len(li) != 2:
                    uniform2 = False
            idx = np.array(flat, dtype=np.int64)
            shares = self._caps_arr[idx] / self._counts_arr[idx]
            if uniform2:
                rates = shares.reshape(k, 2).min(axis=1)
            else:
                rates = np.minimum.reduceat(shares, np.array(offsets, dtype=np.int64))
            for flow, rate in zip(touched, rates.tolist()):
                delta = rate - flow.rate
                if delta:
                    for key in flow.links:
                        link_rate[key] += delta
                flow.rate = rate
                t = flow.timer
                if t is not None:
                    cancel(t)
                if rate > 0.0:
                    timer = new_timeout(flow.remaining / rate)
                    timer.callbacks.append(flow.cb)
                    flow.timer = timer
                else:
                    flow.timer = None
            return
        link_caps = self.link_caps
        link_flows = self.link_flows
        for flow in touched:
            links = flow.links
            if len(links) == 2:
                # Fast path: the wire path always shares a TX and an RX lane.
                a, b = links
                ra = link_caps[a] / len(link_flows[a])
                rb = link_caps[b] / len(link_flows[b])
                rate = ra if ra < rb else rb
            else:
                rate = min(
                    link_caps[key] / len(link_flows[key]) for key in links
                )
            delta = rate - flow.rate
            if delta:
                for key in links:
                    link_rate[key] += delta
            flow.rate = rate
            t = flow.timer
            if t is not None:
                cancel(t)
            if rate > 0.0:
                timer = new_timeout(flow.remaining / rate)
                timer.callbacks.append(flow.cb)
                flow.timer = timer
            else:
                flow.timer = None

    def _cancel_timer(self, flow: Flow) -> None:
        if flow.timer is not None:
            self.env.cancel(flow.timer)
            flow.timer = None

    def _arm(self, flow: Flow) -> None:
        self._cancel_timer(flow)
        if flow.rate <= 0:
            return
        horizon = flow.remaining / flow.rate
        timer = self.env.timeout(max(horizon, 0.0))
        timer.callbacks.append(flow.cb)
        flow.timer = timer

    def _on_timer(self, flow: Flow, ev) -> None:
        if flow.timer is not ev or flow.fid not in self.flows:
            return  # superseded by a later rate change, or already finished
        flow.timer = None
        self._touch(flow)
        if flow.remaining > max(_FINISH_SLACK_BYTES, flow.rate * 1e-9):
            # Float drift: not quite done; re-arm for the residual.
            self._arm(flow)
            return
        del self.flows[flow.fid]
        self._unlink(flow)
        self.completed += 1
        self._g_active.set(len(self.flows))
        flow.done.succeed()
        # Freed capacity speeds up the neighbours.
        self._rerate(self._affected(flow.links))
