"""Flow-level (fluid) bandwidth sharing for bulk transfers.

Message-granularity FIFO serialization at NICs produces convoy effects
that packet-switched fabrics do not have: a megabyte transfer would block
an unrelated transfer for its full serialization time, idling the
receiver. Real NICs interleave at packet granularity, so concurrent flows
share bandwidth ~fairly. This module implements the standard flow-level
approximation:

* each *link* (one node direction for one protocol stack) has a capacity
  in bytes/second — the protocol's effective bandwidth, so e.g. all TCP
  flows into a node share the IPoIB stack's effective rate while MPI flows
  share the verbs path's;
* an active flow's rate is the minimum of its links' equal shares (exact
  max-min for the symmetric all-to-all patterns of a shuffle) — so a
  flow's rate depends *only on its own links' flow counts*;
* bookkeeping is lazy and local: starting/finishing a flow re-rates only
  the flows sharing its links, each flow's progress is drained on touch,
  and completions use per-flow generation-guarded timers. This keeps the
  cost per network event at O(flows on the affected links), which is what
  makes 32-worker shuffle simulations tractable.
"""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.engine import SimEngine
    from repro.simnet.events import Event

# A residual below this many bytes counts as finished (guards against
# float-time horizons that round to zero near large clock values).
_FINISH_SLACK_BYTES = 1e-3


class Flow:
    """One in-progress bulk transfer."""

    __slots__ = ("fid", "links", "remaining", "rate", "last", "gen", "done", "timer")
    _ids = itertools.count(0)

    def __init__(self, links: tuple[Hashable, ...], nbytes: float, done: "Event") -> None:
        self.fid = next(Flow._ids)
        self.links = links
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.last = 0.0  # sim time of the last progress drain
        self.gen = 0  # bumped on every rate change; stale timers no-op
        self.done = done
        self.timer = None  # pending completion Timeout (cancelled on re-rate)


class FluidNetwork:
    """Tracks active flows and drives their completions."""

    def __init__(self, env: "SimEngine") -> None:
        self.env = env
        self.flows: dict[int, Flow] = {}
        self.link_flows: dict[Hashable, set[int]] = {}
        self.link_caps: dict[Hashable, float] = {}
        # Running sum of active flow rates per link, maintained at every
        # rate change / flow removal so utilization() is O(1) instead of
        # scanning link_flows.
        self.link_rate: dict[Hashable, float] = {}
        self.completed = 0
        # Time-weighted concurrency of bulk transfers (repro.obs).
        self._g_active = env.metrics.time_gauge("simnet.fluid.active_flows")
        self._c_flow_bytes = env.metrics.counter("simnet.fluid.flow_bytes")

    # -- public API ----------------------------------------------------------
    def transfer(self, links: list[tuple[Hashable, float]], nbytes: float) -> "Event":
        """Start a flow over ``[(link_key, capacity_Bps), ...]``.

        Returns an event triggering when the last byte has moved. A link's
        capacity is fixed by its first appearance; later values for the
        same key are ignored.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        done = self.env.event()
        if nbytes == 0:
            done.succeed()
            return done
        keys = []
        for key, cap in links:
            if cap <= 0:
                raise ValueError(f"link capacity must be positive, got {cap}")
            if key not in self.link_caps:
                self.link_caps[key] = float(cap)
                self.link_flows[key] = set()
                self.link_rate[key] = 0.0
            keys.append(key)
        flow = Flow(tuple(keys), nbytes, done)
        flow.last = self.env.now
        self.flows[flow.fid] = flow
        self._g_active.set(len(self.flows))
        self._c_flow_bytes.inc(nbytes)
        affected = self._affected(keys)
        for key in keys:
            self.link_flows[key].add(flow.fid)
        self._rerate(affected | {flow.fid})
        return done

    @property
    def active_count(self) -> int:
        return len(self.flows)

    def abort_flows(self, link_pred, exc_factory) -> int:
        """Fail every active flow crossing a link matching ``link_pred``.

        Used on node failure: in-flight bulk transfers touching the dead
        node complete in error (their ``done`` event fails with
        ``exc_factory()``), and the freed capacity re-rates survivors.
        Returns the number of flows aborted.
        """
        victims = [
            flow
            for flow in self.flows.values()
            if any(link_pred(key) for key in flow.links)
        ]
        for flow in sorted(victims, key=lambda f: f.fid):
            del self.flows[flow.fid]
            for key in flow.links:
                self.link_flows[key].discard(flow.fid)
                self.link_rate[key] -= flow.rate
            flow.gen += 1  # stale completion timers become no-ops
            self._cancel_timer(flow)
            flow.done.fail(exc_factory())
        self._g_active.set(len(self.flows))
        if victims:
            affected: set[int] = set()
            for flow in victims:
                affected |= self._affected(flow.links)
            self._rerate(affected)
        return len(victims)

    def utilization(self, link: Hashable) -> float:
        """Instantaneous share of a link's capacity in use.

        O(1): reads the running per-link rate sum maintained by _rerate
        and the removal paths instead of scanning the link's flows. The
        max(0, ·) clamps float cancellation residue near zero.
        """
        cap = self.link_caps.get(link)
        if not cap:
            return 0.0
        return max(self.link_rate.get(link, 0.0), 0.0) / cap

    # -- internals ----------------------------------------------------------
    def _affected(self, keys) -> set[int]:
        out: set[int] = set()
        for key in keys:
            out |= self.link_flows.get(key, set())
        return out

    def _touch(self, flow: Flow) -> None:
        """Drain progress since the flow's last update."""
        now = self.env.now
        dt = now - flow.last
        if dt > 0:
            flow.remaining -= flow.rate * dt
            if flow.remaining < 0:
                flow.remaining = 0.0
        flow.last = now

    def _rerate(self, fids: set[int]) -> None:
        """Re-rate the given flows and (re-)arm their completion timers.

        Two coalesced passes per step: drain everyone's progress first,
        then compute the new rates and arm timers — one timer churn per
        affected flow per re-rate, with the superseded timer cancelled
        (tombstoned) instead of left to fire as a no-op.
        """
        touched = []
        # sorted(fids) is load-bearing: _arm() below enqueues completion
        # timers, and the event heap breaks same-timestamp ties by
        # insertion sequence. Iterating a raw set would make timer order
        # (and thus simulated schedules) depend on set-iteration order,
        # breaking the byte-identical committed figure rows.
        for fid in sorted(fids):
            flow = self.flows.get(fid)
            if flow is None:
                continue
            self._touch(flow)
            touched.append(flow)
        link_caps = self.link_caps
        link_flows = self.link_flows
        link_rate = self.link_rate
        for flow in touched:
            links = flow.links
            if len(links) == 2:
                # Fast path: the wire path always shares a TX and an RX lane.
                a, b = links
                ra = link_caps[a] / len(link_flows[a])
                rb = link_caps[b] / len(link_flows[b])
                rate = ra if ra < rb else rb
            else:
                rate = min(
                    link_caps[key] / len(link_flows[key]) for key in links
                )
            delta = rate - flow.rate
            if delta:
                for key in links:
                    link_rate[key] += delta
            flow.rate = rate
            flow.gen += 1
            self._arm(flow)

    def _cancel_timer(self, flow: Flow) -> None:
        if flow.timer is not None:
            self.env.cancel(flow.timer)
            flow.timer = None

    def _arm(self, flow: Flow) -> None:
        self._cancel_timer(flow)
        if flow.rate <= 0:
            return
        horizon = flow.remaining / flow.rate
        timer = self.env.timeout(max(horizon, 0.0))
        gen = flow.gen
        timer.add_callback(lambda ev, f=flow, g=gen: self._on_timer(f, g))
        flow.timer = timer

    def _on_timer(self, flow: Flow, gen: int) -> None:
        if gen != flow.gen or flow.fid not in self.flows:
            return  # superseded by a later rate change, or already finished
        flow.timer = None
        self._touch(flow)
        if flow.remaining > max(_FINISH_SLACK_BYTES, flow.rate * 1e-9):
            # Float drift: not quite done; re-arm for the residual.
            flow.gen += 1
            self._arm(flow)
            return
        del self.flows[flow.fid]
        for key in flow.links:
            self.link_flows[key].discard(flow.fid)
            self.link_rate[key] -= flow.rate
        self.completed += 1
        self._g_active.set(len(self.flows))
        flow.done.succeed()
        # Freed capacity speeds up the neighbours.
        self._rerate(self._affected(flow.links))
