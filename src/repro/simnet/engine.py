"""The simulation engine: virtual clock + event scheduler.

A :class:`SimEngine` owns the event heap and the ``now`` clock. All
substrates (MPI runtime, Netty event loops, Spark executors, NIC models)
share one engine per simulated cluster.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable

from repro.simnet.events import (
    AllOf,
    AnyOf,
    Event,
    Process,
    SimError,
    Timeout,
)
from repro.util.rng import SeededRng


class EmptySchedule(SimError):
    """Raised by :meth:`SimEngine.step` when no events remain."""


class SimEngine:
    """Virtual-time discrete-event scheduler.

    >>> env = SimEngine()
    >>> def hello(env):
    ...     yield env.timeout(2.5)
    ...     return "done at %g" % env.now
    >>> p = env.process(hello(env))
    >>> env.run()
    >>> p.value
    'done at 2.5'
    """

    # Upper bound on the Timeout free list; beyond this, recycled instances
    # are simply dropped for the GC (bounds memory under timer storms).
    _POOL_MAX = 4096

    def __init__(self, start_time: float = 0.0, seed: int = 0) -> None:
        self.now: float = start_time
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None
        self._timeout_pool: list[Timeout] = []
        self._n_dead = 0  # tombstoned (cancelled) entries still in the heap
        self.events_processed = 0  # lifetime dispatch count (perf harness)
        # Every stochastic component (fault injection, chaos filters) forks a
        # substream off this so one seed reproduces the whole simulation.
        self.seed = int(seed)
        self.rng = SeededRng(self.seed)
        # Observability (repro.obs): the registry is always live — its
        # counters are cheap enough to leave on — while span tracing and
        # causal message tracing stay shared no-ops until a run opts in
        # (spark.repro.obs.trace / spark.repro.obs.causal), which swaps in
        # a real Tracer / CausalTracer.
        from repro.obs.causal import NULL_CAUSAL
        from repro.obs.registry import MetricsRegistry
        from repro.obs.tracer import NULL_TRACER

        self.metrics = MetricsRegistry(self)
        self.tracer = NULL_TRACER
        self.causal = NULL_CAUSAL

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed (None between steps)."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if none)."""
        return self._heap[0][0] if self._heap else float("inf")

    def cancel(self, timeout: Timeout) -> None:
        """Cancel a pending :class:`Timeout`: its callbacks never run.

        The heap entry stays behind as a tombstone — popped-and-skipped by
        the run loop (advancing the clock exactly as the old no-op callback
        did) — and the heap is compacted in place once tombstones outnumber
        live entries. Cancelling an already-fired or already-cancelled
        timeout is a no-op.
        """
        if timeout.callbacks is None or timeout._dead:
            return
        timeout._dead = True
        self._n_dead += 1
        if self._n_dead > 64 and self._n_dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstoned heap entries, recycling their Timeout objects.

        Entries keep their ``(when, seq)`` keys, so heapify preserves the
        exact pop order of the surviving events.
        """
        pool = self._timeout_pool
        heap = self._heap
        live = []
        for entry in heap:
            ev = entry[2]
            if type(ev) is Timeout and ev._dead:
                ev._dead = False
                if len(pool) < self._POOL_MAX:
                    pool.append(ev)
            else:
                live.append(entry)
        # In place: the run loop holds a local alias to this exact list.
        heap[:] = live
        heapq.heapify(heap)
        self._n_dead = 0

    def step(self) -> None:
        """Process one scheduled event, advancing the clock to it."""
        while True:
            try:
                when, _, event = heapq.heappop(self._heap)
            except IndexError:
                raise EmptySchedule("no scheduled events") from None
            if when < self.now:
                raise SimError(f"time went backwards: {when} < {self.now}")
            self.now = when
            if type(event) is Timeout and event._dead:
                # Cancelled timer: skip the tombstone (clock still advances).
                self._n_dead -= 1
                event._dead = False
                if len(self._timeout_pool) < self._POOL_MAX:
                    self._timeout_pool.append(event)
                continue
            break
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks or ():
            cb(event)
        if not event._ok and not callbacks and not isinstance(event, Process):
            # A failed event nobody waited on would silently vanish.
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the schedule drains, ``until`` time passes, or an
        ``until`` event triggers. Returns the event's value in that case.

        Unhandled process failures propagate out of ``run`` so tests see
        real tracebacks instead of hung simulations.
        """
        stop_event: Event | None = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self.now:
                raise ValueError(f"until={stop_time} is in the past (now={self.now})")

        # Hot loop: locals for everything touched per event, tombstone
        # skipping for cancelled timers, and batched dispatch of events
        # sharing a timestamp (the stop horizon is checked once per batch —
        # equal timestamps cannot exceed it; the stop *event* can only be
        # processed by this loop popping it, which returns directly).
        heap = self._heap
        heappop = heapq.heappop
        pool = self._timeout_pool
        pool_max = self._POOL_MAX
        timeout_cls = Timeout
        n_dispatched = 0
        try:
            while heap:
                if stop_event is not None and stop_event.callbacks is None:
                    break
                when = heap[0][0]
                if when > stop_time:
                    self.now = stop_time
                    break
                self.now = when
                while heap and heap[0][0] == when:
                    event = heappop(heap)[2]
                    if event.__class__ is timeout_cls and event._dead:
                        # Cancelled timer: the clock advanced, nothing runs.
                        self._n_dead -= 1
                        event._dead = False
                        if len(pool) < pool_max:
                            pool.append(event)
                        continue
                    n_dispatched += 1
                    callbacks, event.callbacks = event.callbacks, None
                    for cb in callbacks or ():
                        cb(event)
                    if not event._ok and not callbacks and isinstance(event, Process):
                        # A process died and nobody is joining it: surface it.
                        raise event._value
                    if stop_event is not None and event is stop_event:
                        if not event._ok:
                            raise event._value
                        return event._value
                    if event.__class__ is timeout_cls and len(pool) < pool_max:
                        # Fired and fully dispatched: back to the free list.
                        pool.append(event)
        finally:
            self.events_processed += n_dispatched
        if stop_event is not None:
            # Reached when the loop broke (event already processed) or the
            # schedule drained; the in-loop pop of the event returns above.
            if not stop_event.triggered:
                raise SimError(
                    "run(until=event): schedule drained before event fired"
                )
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if stop_time != float("inf") and stop_time > self.now:
            # The schedule drained before the horizon: time still passes.
            self.now = stop_time
        return None

    # -- factories -----------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            return pool.pop()._reuse(delay, value)
        return Timeout(self, delay, value)

    def process(
        self, gen: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)
