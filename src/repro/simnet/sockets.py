"""Simulated stream sockets (the TCP/IPoIB path).

Netty's NIO transport rides on these: connection establishment is a
SYN/SYN-ACK round trip, each direction of an established socket is an
in-order byte stream, and every segment pays the TCP wire model's costs.

Ordering guarantee: each socket direction drains its outbound queue through
a single *pump* process, so messages on one connection can never overtake
each other — exactly TCP's contract, and required by Netty's frame decoder.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Generator

from repro.simnet.engine import SimEngine
from repro.simnet.events import Event, SimError
from repro.simnet.interconnect import WireModel
from repro.simnet.resources import Store
from repro.simnet.topology import LinkDown, MessageDropped, SimCluster, SimNode

# TCP's minimum retransmission timeout; paid per dropped segment before the
# pump retries. Makes lossy links slow for TCP where they are *fatal* for
# the MPI path (see repro.mpi.runtime._Pipe).
RETRANSMIT_DELAY_S = 0.2


class SocketError(SimError):
    """Connection-level failure (refused, closed, reset, double bind)."""


@dataclass(frozen=True)
class SocketAddress:
    """(host, port) endpoint address."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass(frozen=True)
class Segment:
    """One application message carried on the stream.

    ``payload`` is the sample-scale object; ``nbytes`` is the nominal wire
    size actually charged. ``eof`` marks an orderly close.
    """

    payload: Any
    nbytes: int
    eof: bool = False


class SimSocket:
    """One endpoint of an established connection."""

    _ids = itertools.count(1)

    def __init__(
        self,
        stack: "SocketStack",
        node: SimNode,
        peer_node: SimNode,
        local: SocketAddress,
        remote: SocketAddress,
        model: WireModel,
    ) -> None:
        self.stack = stack
        self.env = stack.env
        self.node = node
        self.peer_node = peer_node
        self.local = local
        self.remote = remote
        self.model = model
        self.socket_id = next(SimSocket._ids)
        self.peer: SimSocket | None = None  # wired by the stack
        self._outbound: Store = Store(stack.env)
        self._inbound: Store = Store(stack.env)
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        stack._register(self)
        self._pump = stack.env.process(self._pump_loop(), name=f"sock{self.socket_id}-pump")

    # -- API -------------------------------------------------------------
    def send(self, payload: Any, nbytes: int) -> Event:
        """Queue a message on the stream. Returns the enqueue event.

        Sends on a closed socket raise :class:`SocketError` — Spark treats
        that as a fetch failure.
        """
        if self.closed:
            raise SocketError(f"send on closed socket {self.local}->{self.remote}")
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self._outbound.put(Segment(payload, nbytes))

    def recv(self) -> Event:
        """Event yielding the next :class:`Segment` (``eof`` on close)."""
        return self._inbound.get()

    def recv_nowait(self) -> Segment | None:
        """Non-blocking peek-and-take, used by the NIO selector loop."""
        seg = self._inbound.peek()
        if seg is None:
            return None
        # Drain via an immediate get; Store guarantees it succeeds.
        ev = self._inbound.get()
        assert ev.triggered
        return ev.value

    @property
    def readable(self) -> bool:
        return len(self._inbound) > 0

    def when_readable(self):
        """Non-consuming event: triggers when a segment is queued (NIO OP_READ)."""
        return self._inbound.when_nonempty()

    def close(self) -> None:
        """Orderly close: flush queued segments then signal EOF to the peer."""
        if self.closed:
            return
        self.closed = True
        self._outbound.put(Segment(None, 0, eof=True))

    def abort(self) -> None:
        """Abrupt teardown (peer died / connection reset): no flush.

        EOF surfaces on the *local* inbound stream so the owning event loop
        fires ``channel_inactive``; nothing is sent to the peer.
        """
        if self.closed:
            return
        self.closed = True
        self._inbound.put(Segment(None, 0, eof=True))

    # -- internals ---------------------------------------------------------
    def _pump_loop(self) -> Generator[Event, Any, None]:
        env = self.env
        while True:
            seg = yield self._outbound.get()
            if seg.eof:
                peer = self.peer
                if peer is not None:
                    try:
                        yield from self.stack.cluster.wire_path(
                            self.node, self.peer_node, 0, self.model
                        )
                    except (LinkDown, MessageDropped):
                        return  # peer gone; FIN is moot
                    peer._inbound.put(seg)
                return
            # Sender-side stack cost, wire, receiver-side stack cost.
            yield env.timeout(self.model.sender_cpu_time(seg.nbytes))
            delivered = False
            while not delivered:
                try:
                    yield from self.stack.cluster.wire_path(
                        self.node, self.peer_node, seg.nbytes, self.model
                    )
                    delivered = True
                except MessageDropped:
                    # TCP retransmits lost segments after an RTO.
                    yield env.timeout(RETRANSMIT_DELAY_S)
                except LinkDown:
                    # Connection reset: surface EOF locally; a surviving
                    # peer learns via the stack's failure-detection sweep.
                    self.abort()
                    return
            yield env.timeout(self.model.receiver_cpu_time(seg.nbytes))
            self.bytes_sent += seg.nbytes
            peer = self.peer
            if peer is None:
                raise SocketError("socket pump running before peer wired")
            peer.bytes_received += seg.nbytes
            peer._inbound.put(seg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimSocket {self.local}->{self.remote}>"


class ListeningSocket:
    """A bound server socket; ``accept()`` yields established connections."""

    def __init__(self, stack: "SocketStack", node: SimNode, addr: SocketAddress) -> None:
        self.stack = stack
        self.node = node
        self.addr = addr
        self._backlog: Store = Store(stack.env)
        self.closed = False

    def accept(self) -> Event:
        """Event yielding the next accepted :class:`SimSocket`."""
        if self.closed:
            raise SocketError(f"accept on closed listener {self.addr}")
        return self._backlog.get()

    @property
    def acceptable(self) -> bool:
        return len(self._backlog) > 0

    def when_acceptable(self) -> Event:
        """Non-consuming event: a connection is waiting (NIO OP_ACCEPT)."""
        return self._backlog.when_nonempty()

    def close(self) -> None:
        self.closed = True
        self.stack._unbind(self.addr)


class SocketStack:
    """Cluster-wide socket registry: bind / listen / connect."""

    def __init__(self, env: SimEngine, cluster: SimCluster, model: WireModel) -> None:
        self.env = env
        self.cluster = cluster
        self.model = model
        self._listeners: dict[SocketAddress, ListeningSocket] = {}
        self._ephemeral = itertools.count(49152)
        self._sockets: list[SimSocket] = []
        cluster.link_state.on_change(self._on_link_event)

    def _register(self, sock: SimSocket) -> None:
        self._sockets.append(sock)

    def _on_link_event(self, kind: str, payload) -> None:
        if kind != "node-failed":
            return
        node: SimNode = payload
        self.env.process(
            self._failure_sweep(node), name=f"sock-sweep:{node.name}"
        )

    def _failure_sweep(self, node: SimNode) -> Generator[Event, Any, None]:
        """After the detection delay, reset connections touching a dead node.

        Models the RST / connection-timeout path: surviving endpoints see
        EOF on their stream (→ Netty fires ``channel_inactive``); new
        connects to the dead node are refused because its listeners close.
        """
        yield self.env.timeout(self.cluster.link_state.detect_delay_s)
        for addr, listener in list(self._listeners.items()):
            if listener.node is node:
                listener.closed = True
                self._unbind(addr)
        for sock in list(self._sockets):
            if sock.closed:
                self._sockets.remove(sock)
                continue
            if sock.node is node:
                sock.closed = True  # dead host: silent, nothing to surface
            elif sock.peer_node is node:
                sock.abort()

    def listen(self, node: SimNode | str | int, port: int) -> ListeningSocket:
        node = self.cluster.node(node)
        addr = SocketAddress(node.name, port)
        if addr in self._listeners:
            raise SocketError(f"address already in use: {addr}")
        listener = ListeningSocket(self, node, addr)
        self._listeners[addr] = listener
        return listener

    def _unbind(self, addr: SocketAddress) -> None:
        self._listeners.pop(addr, None)

    def connect(
        self, node: SimNode | str | int, remote: SocketAddress
    ) -> Generator[Event, Any, SimSocket]:
        """Generator establishing a connection (one SYN/SYN-ACK round trip).

        Returns the client-side :class:`SimSocket`; the server side appears
        in the listener's accept queue.
        """
        node = self.cluster.node(node)
        listener = self._listeners.get(remote)
        if listener is None or listener.closed:
            raise SocketError(f"connection refused: {remote}")
        server_node = listener.node
        local = SocketAddress(node.name, next(self._ephemeral))

        # SYN / SYN-ACK round trip on the wire.
        try:
            yield from self.cluster.wire_path(node, server_node, 0, self.model)
            yield from self.cluster.wire_path(server_node, node, 0, self.model)
        except (LinkDown, MessageDropped) as exc:
            raise SocketError(f"connect to {remote} failed: {exc}") from exc
        if listener.closed:
            raise SocketError(f"connection refused: {remote}")

        client = SimSocket(self, node, server_node, local, remote, self.model)
        server = SimSocket(self, server_node, node, remote, local, self.model)
        client.peer = server
        server.peer = client
        listener._backlog.put(server)
        return client
