"""Discrete-event kernel: events, timeouts, processes, condition events.

This is a from-scratch simpy-style kernel (simpy is not available offline).
Simulation *processes* are Python generators that ``yield`` events; the
engine resumes a process when the event it waits on triggers. The MPI
runtime, the Netty event loops and the Spark executors in this reproduction
are all simulation processes built on this kernel.

Design notes:

* An :class:`Event` triggers exactly once, either with a value
  (:meth:`Event.succeed`) or an exception (:meth:`Event.fail`). Failing
  events propagate into the waiting generator via ``throw`` so simulation
  code uses ordinary ``try/except``.
* :class:`Process` is itself an event that triggers when its generator
  returns (value = the generator's return value) — processes can wait on
  each other, which is how ``join`` semantics work everywhere above.
* Determinism: events scheduled for the same timestamp fire in scheduling
  order (a monotone sequence number breaks heap ties), so simulations are
  exactly reproducible.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.engine import SimEngine

# Sentinel distinguishing "not yet triggered" from a None value.
_PENDING = object()


class SimError(RuntimeError):
    """Base class for kernel errors."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` carries the interrupter's reason (any object).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "SimEngine") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool = True

    @property
    def triggered(self) -> bool:
        """True once the event has a value or exception."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event with ``value`` and schedule its callbacks."""
        if self._value is not _PENDING:
            raise SimError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._seq += 1
        heappush(env._heap, (env.now, env._seq, self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not _PENDING:
            raise SimError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._ok = False
        self._value = exc
        env = self.env
        env._seq += 1
        heappush(env._heap, (env.now, env._seq, self))
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately —
        this is what lets a process wait on an event that fired in the past
        (e.g. joining an already-finished process).
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = f"ok={self._ok} value={self._value!r}"
        return f"<{type(self).__name__} {state}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds in the future.

    Timeouts are by far the most-allocated event type (every simulated
    cost charge is one), so the engine keeps a free list: :meth:`_reuse`
    re-initialises a recycled instance in place of ``__init__``.  A
    pending timeout can also be cancelled via ``SimEngine.cancel`` — the
    ``_dead`` flag tombstones its heap entry, and its callbacks never run.
    """

    __slots__ = ("delay", "_dead")

    def __init__(self, env: "SimEngine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self.delay = delay
        self._dead = False
        env._seq += 1
        heappush(env._heap, (env.now + delay, env._seq, self))

    def _reuse(self, delay: float, value: Any = None) -> "Timeout":
        """Re-initialise a pooled instance (same contract as ``__init__``)."""
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.callbacks = []
        self._ok = True
        self._value = value
        self.delay = delay
        self._dead = False
        env = self.env
        env._seq += 1
        heappush(env._heap, (env.now + delay, env._seq, self))
        return self


class Initialize(Event):
    """Internal: kicks off a new process on the next scheduler step."""

    __slots__ = ()

    def __init__(self, env: "SimEngine") -> None:
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = None
        env._seq += 1
        heappush(env._heap, (env.now, env._seq, self))


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is an event: it triggers with the generator's return value,
    or fails with the exception that escaped the generator.
    """

    __slots__ = ("gen", "name", "_target", "_interrupts")

    def __init__(
        self,
        env: "SimEngine",
        gen: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        if not hasattr(gen, "throw"):
            raise TypeError(f"process body must be a generator, got {gen!r}")
        super().__init__(env)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Event | None = None
        self._interrupts: list[Interrupt] = []
        init = Initialize(env)
        init.add_callback(self._resume)
        self._target = init

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            raise SimError(f"cannot interrupt finished process {self.name}")
        self._interrupts.append(Interrupt(cause))
        target = self._target
        if target is not None and not target.triggered:
            # Detach from the waited-on event and wake immediately. The
            # callback must go too: if the old target triggers later (e.g. a
            # queued resource request cancelled by the dying process's own
            # finally-release), it would re-resume a finished process.
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            wakeup = Event(self.env)
            wakeup._ok = True
            wakeup._value = None
            self.env._schedule(wakeup)
            wakeup.add_callback(self._resume)
            self._target = wakeup

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if self.triggered:
            return  # stale callback from an event this process detached from
        env = self.env
        env._active_process = self
        gen = self.gen
        while True:
            try:
                if self._interrupts:
                    exc = self._interrupts.pop(0)
                    next_event = gen.throw(exc)
                elif event._ok:
                    next_event = gen.send(event._value)
                else:
                    next_event = gen.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self._ok = True
                self._value = stop.value
                env._seq += 1
                heappush(env._heap, (env.now, env._seq, self))
                return
            except Interrupt as exc:
                # An unhandled interrupt terminates the process "with cause".
                env._active_process = None
                self._ok = False
                self._value = exc
                env._seq += 1
                heappush(env._heap, (env.now, env._seq, self))
                return
            except BaseException as exc:
                env._active_process = None
                self._ok = False
                self._value = exc
                env._seq += 1
                heappush(env._heap, (env.now, env._seq, self))
                return

            # EAFP: everything yieldable has a ``callbacks`` slot; anything
            # else is a programming error surfaced as a SimError failure.
            try:
                cbs = next_event.callbacks
            except AttributeError:
                env._active_process = None
                self._ok = False
                self._value = SimError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                env._seq += 1
                heappush(env._heap, (env.now, env._seq, self))
                return

            self._target = next_event
            if cbs is None:
                # Already-processed events resume synchronously (loop again).
                event = next_event
                continue
            cbs.append(self._resume)
            env._active_process = None
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} {'done' if self.triggered else 'alive'}>"


class Condition(Event):
    """Composite event over several sub-events (see :class:`AllOf`/:class:`AnyOf`).

    Completion is tracked through callbacks (``processed``), not the
    ``triggered`` flag — :class:`Timeout` pre-sets its value at construction,
    so ``triggered`` does not mean "has already happened".
    """

    __slots__ = ("events", "_needed", "_done")

    def __init__(self, env: "SimEngine", events: Iterable[Event], wait_all: bool) -> None:
        super().__init__(env)
        self.events = tuple(events)
        # (event, value) pairs captured at fire time: a Timeout sub-event
        # may be recycled (engine free list) before the condition completes,
        # so its _value cannot be read later.
        self._done: list[tuple[Event, Any]] = []
        if not self.events:
            self._ok = True
            self._value = {}
            env._schedule(self)
            return
        for ev in self.events:
            if ev.env is not env:
                raise SimError("condition mixes events from different engines")
        self._needed = len(self.events) if wait_all else 1
        for ev in self.events:
            ev.add_callback(self._on_sub_event)

    def _on_sub_event(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done.append((event, event._value))
        self._needed -= 1
        if self._needed <= 0:
            self.succeed(dict(self._done))


class AllOf(Condition):
    """Triggers when *all* sub-events have triggered (fails fast on failure)."""

    __slots__ = ()

    def __init__(self, env: "SimEngine", events: Iterable[Event]) -> None:
        super().__init__(env, events, wait_all=True)


class AnyOf(Condition):
    """Triggers when *any* sub-event triggers."""

    __slots__ = ()

    def __init__(self, env: "SimEngine", events: Iterable[Event]) -> None:
        super().__init__(env, events, wait_all=False)
