"""Interconnect fabrics and per-protocol wire cost models.

A :class:`Fabric` is the physical link (IB-HDR, Omni-Path, IB-EDR — the
three systems of Table III). A :class:`WireModel` is LogGP-style protocol
behaviour on top of a fabric:

* ``latency_s``      — one-way propagation + switch latency (``L``),
* ``send/recv_overhead_s`` — per-message CPU time at each end (``o``),
* ``per_byte_s``     — gap per byte, i.e. 1 / effective bandwidth (``G``),
* ``per_chunk_s`` / ``chunk_bytes`` — stacks that segment a message into
  chunks (TCP/Netty framing) pay an extra cost per chunk,
* ``rendezvous_threshold / rendezvous_extra_s`` — MPI's eager→rendezvous
  protocol switch adds a handshake round-trip for large messages,
* ``per_byte_cpu_s`` — CPU time per byte for stacks that copy payloads
  through the host (the IPoIB TCP path copies twice; RDMA and large-message
  MPI are zero-copy).

Calibration: the constants below are set so that the Fig-8 ping-pong curve
on the internal cluster reproduces the paper's ~9x Netty+MPI advantage at
4 MiB, and documented against publicly reported numbers (IPoIB on 100 G IB
sustains ~10-15 Gb/s; MVAPICH2 pt2pt on HDR reaches ~1 us latency and >85%
of line rate; RDMA verbs latency ~2-3 us with the RDMA-Spark/UCR runtime
reaching only a fraction of line rate end-to-end, consistent with the
paper's measured 2.3x shuffle-read gain over IPoIB vs MPI4Spark's 13x).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.util.units import GiB, US, gbps


@dataclass(frozen=True)
class Fabric:
    """A physical interconnect."""

    name: str
    line_rate_Bps: float  # bytes/second at line rate
    base_latency_s: float  # propagation + one switch hop

    def __post_init__(self) -> None:
        if self.line_rate_Bps <= 0:
            raise ValueError("line rate must be positive")
        if self.base_latency_s < 0:
            raise ValueError("latency must be non-negative")


# Table III: all three systems have 100 Gb/s fabrics.
IB_HDR = Fabric("IB-HDR", line_rate_Bps=gbps(100), base_latency_s=0.6 * US)
OPA = Fabric("Omni-Path", line_rate_Bps=gbps(100), base_latency_s=0.9 * US)
IB_EDR = Fabric("IB-EDR", line_rate_Bps=gbps(100), base_latency_s=0.7 * US)

FABRICS = {f.name: f for f in (IB_HDR, OPA, IB_EDR)}


@dataclass(frozen=True)
class WireModel:
    """Protocol cost model over a fabric. All times in seconds."""

    name: str
    fabric: Fabric
    latency_s: float
    send_overhead_s: float
    recv_overhead_s: float
    per_byte_s: float
    per_chunk_s: float = 0.0
    chunk_bytes: int = 1 << 30
    rendezvous_threshold: int = 1 << 62
    rendezvous_extra_s: float = 0.0
    per_byte_cpu_s: float = 0.0

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        for field in ("latency_s", "send_overhead_s", "recv_overhead_s",
                      "per_byte_s", "per_chunk_s", "rendezvous_extra_s",
                      "per_byte_cpu_s"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")

    # -- cost queries --------------------------------------------------------
    def n_chunks(self, nbytes: int) -> int:
        return max(1, math.ceil(nbytes / self.chunk_bytes))

    def serialization_time(self, nbytes: int) -> float:
        """Time the NIC/wire is occupied by this message (bandwidth term)."""
        return nbytes * self.per_byte_s + self.n_chunks(nbytes) * self.per_chunk_s

    def sender_cpu_time(self, nbytes: int) -> float:
        """CPU time at the sender before bytes hit the wire."""
        return self.send_overhead_s + nbytes * self.per_byte_cpu_s

    def receiver_cpu_time(self, nbytes: int) -> float:
        """CPU time at the receiver to surface the message to the app."""
        return self.recv_overhead_s + nbytes * self.per_byte_cpu_s

    def protocol_latency(self, nbytes: int) -> float:
        """Extra protocol latency (wire L + rendezvous handshake if any)."""
        extra = self.rendezvous_extra_s if nbytes > self.rendezvous_threshold else 0.0
        return self.latency_s + extra

    def one_way_time(self, nbytes: int) -> float:
        """End-to-end single-message time with no contention.

        This closed-form is what the analytic Fig-8 check uses; the
        simulator composes the same terms with resource contention.
        """
        return (
            self.sender_cpu_time(nbytes)
            + self.protocol_latency(nbytes)
            + self.serialization_time(nbytes)
            + self.receiver_cpu_time(nbytes)
        )

    def effective_bandwidth_Bps(self) -> float:
        return 1.0 / self.per_byte_s if self.per_byte_s > 0 else float("inf")

    def scaled(self, **overrides: float) -> "WireModel":
        return replace(self, **overrides)


# ---------------------------------------------------------------------------
# Protocol constructors. Fractions of line rate and per-message overheads are
# the calibration surface for the whole reproduction; everything downstream
# consumes WireModels, never raw constants.
# ---------------------------------------------------------------------------

def tcp_over(fabric: Fabric) -> WireModel:
    """TCP/IP sockets over the fabric (IPoIB for IB, IPoOPA for Omni-Path).

    IPoIB runs the full kernel TCP stack: interrupt-driven receives, two
    payload copies, ~64 KiB segmentation. Public IPoIB measurements on
    100 G fabrics report ~10-20 Gb/s and tens of microseconds of latency;
    we sit at ~10.5 Gb/s effective which reproduces the paper's vanilla
    Spark shuffle behaviour.
    """
    return WireModel(
        name=f"tcp/{fabric.name}",
        fabric=fabric,
        latency_s=18.0 * US + fabric.base_latency_s,
        send_overhead_s=8.0 * US,
        recv_overhead_s=10.0 * US,
        per_byte_s=1.0 / (0.12 * fabric.line_rate_Bps),
        per_chunk_s=2.0 * US,  # per-64KiB segment: syscall + netty frame pass
        chunk_bytes=64 << 10,
        per_byte_cpu_s=1.0 / (12.0 * GiB),  # payload copies through the host
    )


def rdma_over(fabric: Fabric) -> WireModel:
    """RDMA verbs as driven by RDMA-Spark's UCR runtime.

    Raw verbs reach near line rate, but RDMA-Spark interposes its Unified
    Communication Runtime: chunk registration, completion handling and a
    Spark-2.1-era BlockTransferService. The paper's own measurement is that
    RDMA-Spark's shuffle read is only ~2.3x faster than IPoIB (13.08/5.56),
    so the end-to-end effective bandwidth is calibrated to ~25 Gb/s.
    """
    return WireModel(
        name=f"rdma-ucr/{fabric.name}",
        fabric=fabric,
        latency_s=2.5 * US + fabric.base_latency_s,
        send_overhead_s=3.0 * US,
        recv_overhead_s=3.0 * US,
        per_byte_s=1.0 / (0.25 * fabric.line_rate_Bps),
        per_chunk_s=6.0 * US,  # per-chunk registration/completion bookkeeping
        chunk_bytes=512 << 10,
        per_byte_cpu_s=0.0,  # zero-copy
    )


def mpi_over(fabric: Fabric) -> WireModel:
    """Native MPI (MVAPICH2-X) point-to-point over the fabric.

    ~1 us small-message latency, >85% of line rate for large messages, an
    eager/rendezvous switch at 16 KiB, and a ~1 us JNI/Java-binding crossing
    charged to each endpoint (the paper's bindings keep the Java layer slim
    precisely to keep this small).
    """
    return WireModel(
        name=f"mpi/{fabric.name}",
        fabric=fabric,
        latency_s=1.0 * US + fabric.base_latency_s,
        send_overhead_s=1.4 * US,  # MPI_Send + JNI crossing
        recv_overhead_s=1.4 * US,
        per_byte_s=1.0 / (0.88 * fabric.line_rate_Bps),
        rendezvous_threshold=16 << 10,
        rendezvous_extra_s=3.0 * US,  # RTS/CTS handshake
        per_byte_cpu_s=0.0,  # zero-copy for rendezvous payloads
    )


def tcp_loaded_over(fabric: Fabric) -> WireModel:
    """TCP/IPoIB under a fully loaded Spark executor (the Fig-10/11 regime).

    The kernel TCP path needs CPU for every byte (checksums, copies,
    interrupt handling); on a node whose 56 cores are saturated with Spark
    tasks, the achievable shuffle throughput is far below the idle-node
    ping-pong number. We calibrate the loaded effective bandwidth to
    ~3.6 Gb/s/node from the paper's own measurement that MPI4Spark's
    shuffle read beats vanilla's by 13.08x at 448 cores (Sec. VII-E) —
    kernel-bypass transports (MPI, RDMA) do not degrade this way.
    """
    base = tcp_over(fabric)
    return base.scaled(per_byte_s=1.0 / (0.039 * fabric.line_rate_Bps))


def rdma_loaded_over(fabric: Fabric) -> WireModel:
    """RDMA-Spark's UCR under load.

    Zero-copy, so it degrades far less than TCP, but UCR's chunk
    registration/completion handling is CPU-assisted. Calibrated from the
    paper's vanilla:RDMA shuffle-read ratio of 13.08/5.56 = 2.35x.
    """
    base = rdma_over(fabric)
    return base.scaled(per_byte_s=1.0 / (0.092 * fabric.line_rate_Bps))


def loopback(fabric: Fabric) -> WireModel:
    """Same-node communication: shared-memory speeds, no NIC involvement."""
    return WireModel(
        name=f"shm/{fabric.name}",
        fabric=fabric,
        latency_s=0.3 * US,
        send_overhead_s=0.4 * US,
        recv_overhead_s=0.4 * US,
        per_byte_s=1.0 / (12.0 * GiB),  # single-copy shared memory
    )


PROTOCOLS = {
    "tcp": tcp_over,
    "tcp-loaded": tcp_loaded_over,
    "rdma": rdma_over,
    "rdma-loaded": rdma_loaded_over,
    "mpi": mpi_over,
    "shm": loopback,
}
