"""Shared-resource primitives for the simulation kernel.

* :class:`Store` — an unbounded (or bounded) FIFO queue of items; the
  building block for mailboxes, sockets and MPI matching queues.
* :class:`Resource` — capacity-limited slots (CPU cores, NIC serialization).
* :class:`SlotGate` — a counting semaphore whose capacity can be raised or
  lowered while held (per-application task-concurrency caps under the
  multi-tenant job server's fair-share scheduler).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator

from repro.simnet.engine import SimEngine
from repro.simnet.events import Event, SimError


class StoreGet(Event):
    """Pending get() on a :class:`Store`; triggers with the item."""

    __slots__ = ("filter",)

    def __init__(self, env: SimEngine, filt: Callable[[Any], bool] | None) -> None:
        super().__init__(env)
        self.filter = filt

    def cancel(self) -> None:
        """Withdraw the request (no-op if already satisfied)."""
        if not self.triggered:
            self.fail(StoreCancelled())


class StoreCancelled(SimError):
    """A pending Store.get() was cancelled before an item arrived."""


class Store:
    """A FIFO item queue with event-based ``put``/``get``.

    ``get`` may carry a *filter*: the first queued item satisfying the
    predicate is returned (this supports MPI tag matching). Items that no
    getter wants stay queued — that is the "unexpected message queue".
    """

    def __init__(self, env: SimEngine, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        self._nonempty_waiters: list[Event] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Queue ``item``; the returned event triggers once it is accepted."""
        ev = Event(self.env)
        if len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
            self._dispatch()
            self._wake_nonempty()
        else:
            self._putters.append((ev, item))
        return ev

    def when_nonempty(self) -> Event:
        """Event triggering when an item is queued, *without* consuming it.

        This is the selector primitive: Netty's ``Selector.select()`` must
        learn a socket became readable without draining it.
        """
        ev = Event(self.env)
        if self.items:
            ev.succeed()
        else:
            self._nonempty_waiters.append(ev)
        return ev

    def _wake_nonempty(self) -> None:
        if self._nonempty_waiters and self.items:
            waiters, self._nonempty_waiters = self._nonempty_waiters, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()

    def get(self, filt: Callable[[Any], bool] | None = None) -> StoreGet:
        """Take the first (matching) item; blocks the caller until one exists."""
        ev = StoreGet(self.env, filt)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def peek(self, filt: Callable[[Any], bool] | None = None) -> Any | None:
        """Non-destructively return the first (matching) item, or None."""
        if filt is None:
            return self.items[0] if self.items else None
        for item in self.items:
            if filt(item):
                return item
        return None

    def _dispatch(self) -> None:
        # Satisfy getters in FIFO order; a getter whose filter matches no
        # queued item stays pending without blocking later getters.
        progressed = True
        while progressed:
            progressed = False
            for getter in list(self._getters):
                if getter.triggered:
                    self._getters.remove(getter)
                    progressed = True
                    continue
                idx = self._find(getter.filter)
                if idx is None:
                    continue
                item = self.items[idx]
                del self.items[idx]
                self._getters.remove(getter)
                getter.succeed(item)
                progressed = True
                # Space freed: admit a waiting putter.
                while self._putters and len(self.items) < self.capacity:
                    put_ev, put_item = self._putters.popleft()
                    self.items.append(put_item)
                    put_ev.succeed()
                if self.items:
                    self._wake_nonempty()

    def _find(self, filt: Callable[[Any], bool] | None) -> int | None:
        if filt is None:
            return 0 if self.items else None
        for i, item in enumerate(self.items):
            if filt(item):
                return i
        return None


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` interchangeable slots (cores, NIC lanes).

    Usage from a process::

        req = cores.request()
        yield req
        try:
            yield env.timeout(work)
        finally:
            cores.release(req)
    """

    def __init__(self, env: SimEngine, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return a slot; wakes the longest-waiting requester."""
        if req in self.users:
            self.users.remove(req)
        elif req in self.queue:
            self.queue.remove(req)
            if not req.triggered:
                req.fail(StoreCancelled())
            return
        else:
            raise SimError("release() of a request this resource never granted")
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()

    def acquire(self) -> Generator[Event, Any, Request]:
        """``yield from``-style helper returning the granted request."""
        req = self.request()
        yield req
        return req


class SlotGate:
    """A counting semaphore with an *adjustable* capacity.

    Unlike :class:`Resource`, the capacity is a soft cap that a scheduler
    may raise (waking queued requesters) or lower (taking effect as holders
    release — in-flight work is never preempted) while the gate is in use.
    ``capacity=0`` is legal and simply parks every requester.

    This is the enforcement point for per-application task-concurrency
    grants in the multi-tenant job server: an application's tasks each hold
    one gate slot for their whole lifetime, so the number of its in-flight
    tasks tracks the scheduler's current grant.
    """

    def __init__(self, env: SimEngine, capacity: int = 0) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.held = 0
        self.queue: Deque[Event] = deque()

    def __len__(self) -> int:
        return self.held

    @property
    def waiting(self) -> int:
        return len(self.queue)

    def request(self) -> Event:
        """Claim one slot; the event triggers once the cap admits it."""
        ev = Event(self.env)
        if self.held < self.capacity:
            self.held += 1
            ev.succeed()
        else:
            self.queue.append(ev)
        return ev

    def release(self) -> None:
        """Return one slot, admitting the longest-waiting requester."""
        if self.held <= 0:
            raise SimError("release() on a SlotGate with no held slots")
        self.held -= 1
        self._admit()

    def set_capacity(self, capacity: int) -> None:
        """Re-cap the gate. Raising wakes waiters; lowering never preempts."""
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._admit()

    def _admit(self) -> None:
        while self.queue and self.held < self.capacity:
            ev = self.queue.popleft()
            if ev.triggered:  # a cancelled/failed waiter
                continue
            self.held += 1
            ev.succeed()
