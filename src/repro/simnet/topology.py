"""Cluster topology: nodes, NICs, and the timed wire path between them.

The cluster is deliberately flat (single full-bisection switch) — Frontera,
Stampede2 and the internal cluster are all fat-tree systems where the paper's
job sizes (≤ 32 nodes) see full bisection bandwidth; node NICs, not the
switch, are the contended resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

from repro.simnet.engine import SimEngine
from repro.simnet.events import Event, SimError
from repro.simnet.fluid import FluidNetwork
from repro.simnet.interconnect import Fabric, WireModel, loopback
from repro.simnet.resources import Resource
from repro.util.stats import OnlineStats

# Messages at or below this size bypass NIC-lane serialization and pay only
# latency + their own (tiny) serialization time. Real fabrics interleave at
# packet granularity, so a 64-byte control message (MPI RTS/CTS, ACKs) never
# queues behind a multi-megabyte bulk transfer; our message-granularity NIC
# model would otherwise stall rendezvous handshakes by whole bulk slots.
CONTROL_BYPASS_BYTES = 256


class LinkDown(SimError):
    """No path between two nodes: an endpoint died or a partition cut it."""


class MessageDropped(SimError):
    """One in-flight message was lost (or corrupted) by fault injection.

    Reliable protocols (TCP) retransmit on this; lossless-fabric protocols
    (MPI over IB) treat it as a fatal link event — that asymmetry is the
    blast-radius story the fault experiments measure.
    """

    def __init__(self, message: str, corrupted: bool = False) -> None:
        super().__init__(message)
        self.corrupted = corrupted


class LinkState:
    """Cluster-wide link health: dead nodes, degraded NICs, partitions.

    The injector mutates this; the wire path consults it; protocol layers
    (sockets, MPI) subscribe via :meth:`on_change` to learn about failures
    after their own detection delay. ``generation`` bumps on every change so
    consumers can key caches off it.
    """

    def __init__(self, env: SimEngine, detect_delay_s: float = 0.05) -> None:
        self.env = env
        self.failed: set[int] = set()
        self.degraded: dict[int, float] = {}  # node index -> slowdown factor
        self._partitions: list[tuple[frozenset[int], frozenset[int]]] = []
        self.generation = 0
        # How long surviving peers take to notice a dead endpoint (models
        # TCP RST / connection-timeout propagation, not instant oracle
        # knowledge).
        self.detect_delay_s = detect_delay_s
        self._listeners: list[Callable[[str, Any], None]] = []

    def on_change(self, listener: Callable[[str, Any], None]) -> None:
        self._listeners.append(listener)

    def _notify(self, kind: str, payload: Any) -> None:
        self.generation += 1
        for listener in list(self._listeners):
            listener(kind, payload)

    # -- mutations (the injector's surface) --------------------------------
    def fail_node(self, node: "SimNode") -> None:
        if node.index in self.failed:
            return
        self.failed.add(node.index)
        self._notify("node-failed", node)

    def degrade(self, node: "SimNode", factor: float) -> None:
        """Slow the node's NIC by ``factor`` (2.0 = half bandwidth)."""
        if factor < 1.0:
            raise ValueError(f"degrade factor must be >= 1, got {factor}")
        self.degraded[node.index] = factor
        self._notify("nic-degraded", node)

    def restore(self, node: "SimNode") -> None:
        if self.degraded.pop(node.index, None) is not None:
            self._notify("nic-restored", node)

    def partition(self, group_a: Iterable[int], group_b: Iterable[int]) -> None:
        self._partitions.append((frozenset(group_a), frozenset(group_b)))
        self._notify("partitioned", self._partitions[-1])

    def heal_partitions(self) -> None:
        if self._partitions:
            self._partitions.clear()
            self._notify("healed", None)

    # -- queries (the wire path's surface) ---------------------------------
    def is_failed(self, node: "SimNode") -> bool:
        return node.index in self.failed

    def path_up(self, src: "SimNode", dst: "SimNode") -> bool:
        if src.index in self.failed or dst.index in self.failed:
            return False
        for side_a, side_b in self._partitions:
            if (src.index in side_a and dst.index in side_b) or (
                src.index in side_b and dst.index in side_a
            ):
                return False
        return True

    def slowdown(self, src: "SimNode", dst: "SimNode") -> float:
        return max(
            self.degraded.get(src.index, 1.0), self.degraded.get(dst.index, 1.0)
        )


@dataclass
class NicStats:
    """Per-node NIC accounting (useful for incast analysis in tests)."""

    tx_bytes: int = 0
    rx_bytes: int = 0
    tx_messages: int = 0
    rx_messages: int = 0


class SimNode:
    """A compute node: CPU cores plus a full-duplex NIC.

    ``nic_lanes`` models NIC parallelism: modern HCAs drive the wire from
    several engines, but the aggregate rate is the wire rate, so the default
    is a single serialization lane per direction.
    """

    def __init__(
        self,
        env: SimEngine,
        index: int,
        name: str,
        cores: int,
        nic_lanes: int = 1,
    ) -> None:
        self.env = env
        self.index = index
        self.name = name
        self.cores = Resource(env, capacity=cores)
        self.tx = Resource(env, capacity=nic_lanes)
        self.rx = Resource(env, capacity=nic_lanes)
        self.nic_stats = NicStats()
        # Registry mirror of nic_stats: per-link (node direction) traffic.
        # Published lazily at snapshot time so the wire path only pays the
        # plain-int NicStats adds per message.
        m = env.metrics
        self._c_tx_bytes = m.counter(f"simnet.link.{name}.tx_bytes")
        self._c_rx_bytes = m.counter(f"simnet.link.{name}.rx_bytes")
        self._c_tx_messages = m.counter(f"simnet.link.{name}.tx_messages")
        self._c_rx_messages = m.counter(f"simnet.link.{name}.rx_messages")
        m.on_snapshot(self._publish_metrics)

    def _publish_metrics(self) -> None:
        ns = self.nic_stats
        self._c_tx_bytes.value = float(ns.tx_bytes)
        self._c_rx_bytes.value = float(ns.rx_bytes)
        self._c_tx_messages.value = float(ns.tx_messages)
        self._c_rx_messages.value = float(ns.rx_messages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimNode {self.name} cores={self.cores.capacity}>"


class NetTrace:
    """Aggregate transfer statistics, grouped by wire-model name."""

    def __init__(self) -> None:
        self.by_model: dict[str, OnlineStats] = {}
        self.bytes_by_model: dict[str, int] = {}
        self.hooks: list[Callable[[dict[str, Any]], None]] = []

    def record(
        self, model: WireModel, src: SimNode, dst: SimNode, nbytes: int, elapsed: float
    ) -> None:
        stats = self.by_model.setdefault(model.name, OnlineStats())
        stats.add(elapsed)
        self.bytes_by_model[model.name] = (
            self.bytes_by_model.get(model.name, 0) + nbytes
        )
        for hook in self.hooks:
            hook(
                {
                    "model": model.name,
                    "src": src.name,
                    "dst": dst.name,
                    "nbytes": nbytes,
                    "elapsed": elapsed,
                }
            )

    def total_bytes(self) -> int:
        return sum(self.bytes_by_model.values())


class SimCluster:
    """A set of :class:`SimNode` connected by one fabric.

    The cluster provides the *timed wire path* primitive
    (:meth:`wire_path`): it charges NIC serialization at both endpoints and
    wire latency, and completes when the last byte lands at the receiver.
    Endpoint CPU overheads (``o_s``/``o_r``) are charged by the protocol
    layers (sockets / MPI), because *where* they are charged — an event-loop
    thread vs. an application thread — is exactly what differs between the
    paper's designs.
    """

    def __init__(
        self,
        env: SimEngine,
        fabric: Fabric,
        n_nodes: int,
        cores_per_node: int,
        nic_lanes: int = 1,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        if cores_per_node < 1:
            raise ValueError(f"need at least one core per node, got {cores_per_node}")
        self.env = env
        self.fabric = fabric
        self.nodes = [
            SimNode(env, i, f"node{i}", cores=cores_per_node, nic_lanes=nic_lanes)
            for i in range(n_nodes)
        ]
        self._by_name = {node.name: node for node in self.nodes}
        self.trace = NetTrace()
        self._loopback = loopback(fabric)
        self.fluid = FluidNetwork(env)
        self.link_state = LinkState(env)
        self.link_state.on_change(self._on_link_event)
        # Optional per-message chaos hook: (src, dst, nbytes, model) ->
        # None | ("drop"|"corrupt", 0.0) | ("delay", seconds). Installed by
        # repro.faults.injector for message-level fault plans.
        self.fault_filter: (
            Callable[[SimNode, SimNode, int, WireModel], tuple[str, float] | None]
            | None
        ) = None
        self.fault_stats = {"dropped": 0, "corrupted": 0, "delayed": 0}
        # Per-wire-model elapsed-time histograms, cached so the per-message
        # hot path avoids registry name lookups. Byte totals are published
        # from the NetTrace aggregates at snapshot time instead of being
        # counted per message.
        self._wire_histograms: dict[str, Any] = {}
        # Per-model memo of the pure delay terms (WireModel is frozen, so
        # every entry is a function of (model, nbytes) only). Keyed by
        # id(model) with the model pinned in the entry so a recycled id
        # can never alias another model's table. Entry layout:
        # [model, {nbytes: serialization+latency}, bulk cap (B/s) or None,
        #  {nbytes: post-transfer protocol+chunk delay}].
        self._wire_delay_memo: dict[int, list] = {}
        env.metrics.on_snapshot(self._publish_metrics)

    def _publish_metrics(self) -> None:
        m = self.env.metrics
        for name, nbytes in self.trace.bytes_by_model.items():
            m.counter(f"simnet.wire.{name}.bytes").value = float(nbytes)

    def _on_link_event(self, kind: str, payload: Any) -> None:
        if kind != "node-failed":
            return
        node: SimNode = payload
        # In-flight bulk transfers touching the dead node fail promptly; the
        # generator parked on the flow's done event sees LinkDown.
        self.fluid.abort_flows(
            lambda key: isinstance(key, tuple) and key and key[0] == node.index,
            lambda: LinkDown(f"{node.name} failed mid-transfer"),
        )

    def fail_node(self, ref: int | str | SimNode) -> None:
        """Convenience: kill a node (delegates to :class:`LinkState`)."""
        self.link_state.fail_node(self.node(ref))

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, ref: int | str | SimNode) -> SimNode:
        if isinstance(ref, SimNode):
            return ref
        if isinstance(ref, int):
            return self.nodes[ref]
        return self._by_name[ref]

    # -- the timed wire path --------------------------------------------------
    def wire_path(
        self,
        src: SimNode,
        dst: SimNode,
        nbytes: int,
        model: WireModel,
    ) -> Generator[Event, Any, float]:
        """Generator charging the wire time for one message.

        Same-node messages use the shared-memory loopback model and bypass
        NIC resources. Cross-node messages hold the sender's TX lane and the
        receiver's RX lane for the serialization time (this is what produces
        incast queueing at a hot receiver), then pay the protocol latency.

        Returns the elapsed simulated time.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        env = self.env
        start = env.now
        ls = self.link_state
        if not ls.path_up(src, dst):
            raise LinkDown(f"no path {src.name}->{dst.name}")
        memo = self._wire_delay_memo
        if src is dst:
            lo = self._loopback
            entry = memo.get(id(lo))
            if entry is None:
                entry = memo[id(lo)] = [lo, {}, None, {}]
            delay = entry[1].get(nbytes)
            if delay is None:
                delay = entry[1][nbytes] = (
                    lo.protocol_latency(nbytes) + lo.serialization_time(nbytes)
                )
            yield env.timeout(delay)
            elapsed = env.now - start
            self.trace.record(lo, src, dst, nbytes, elapsed)
            return elapsed

        if self.fault_filter is not None:
            verdict = self.fault_filter(src, dst, nbytes, model)
            if verdict is not None:
                action, amount = verdict
                if action == "drop":
                    self.fault_stats["dropped"] += 1
                    raise MessageDropped(f"dropped {src.name}->{dst.name}")
                if action == "corrupt":
                    self.fault_stats["corrupted"] += 1
                    raise MessageDropped(
                        f"corrupted {src.name}->{dst.name}", corrupted=True
                    )
                if action == "delay":
                    self.fault_stats["delayed"] += 1
                    yield env.timeout(amount)

        # NIC degradation stretches both serialization and flow rate; flows
        # started before a degradation keep their old rate (the fluid link
        # key embeds the link-state generation) — a coarse but cheap
        # approximation of mid-flow rate renegotiation.
        factor = ls.slowdown(src, dst)
        entry = memo.get(id(model))
        if entry is None:
            entry = memo[id(model)] = [model, {}, None, {}]
        if nbytes <= CONTROL_BYPASS_BYTES:
            # Control-sized messages interleave at packet granularity and
            # never queue behind bulk flows.
            delay = entry[1].get(nbytes)
            if delay is None:
                delay = entry[1][nbytes] = (
                    model.serialization_time(nbytes)
                    + model.protocol_latency(nbytes)
                )
            yield env.timeout(delay * factor)
        else:
            # Bulk payloads: flow-level fair sharing of the protocol stack's
            # effective bandwidth at both endpoints (see simnet.fluid). The
            # per-chunk stack cost is CPU/protocol work, charged on top.
            cap = entry[2]
            if cap is None:
                cap = entry[2] = min(
                    model.effective_bandwidth_Bps(), model.fabric.line_rate_Bps
                )
            cap = cap / factor
            gen = ls.generation
            done = self.fluid.transfer(
                [
                    ((src.index, "tx", model.name, gen), cap),
                    ((dst.index, "rx", model.name, gen), cap),
                ],
                nbytes,
            )
            yield done
            post = entry[3].get(nbytes)
            if post is None:
                post = entry[3][nbytes] = (
                    model.protocol_latency(nbytes)
                    + model.n_chunks(nbytes) * model.per_chunk_s
                )
            yield env.timeout(post * factor)
        if not ls.path_up(src, dst):
            # The receiver died while the message was in flight.
            raise LinkDown(f"{dst.name} failed before delivery from {src.name}")

        src.nic_stats.tx_bytes += nbytes
        src.nic_stats.tx_messages += 1
        dst.nic_stats.rx_bytes += nbytes
        dst.nic_stats.rx_messages += 1
        elapsed = env.now - start
        hist = self._wire_histograms.get(model.name)
        if hist is None:
            hist = env.metrics.histogram(f"simnet.wire.{model.name}.elapsed_s")
            self._wire_histograms[model.name] = hist
        hist.observe(elapsed)
        self.trace.record(model, src, dst, nbytes, elapsed)
        return elapsed

    def transfer_async(
        self,
        src: SimNode,
        dst: SimNode,
        nbytes: int,
        model: WireModel,
        on_delivered: Callable[[], None] | None = None,
    ):
        """Fire-and-forget wire transfer; returns the delivery Process event."""

        def _run() -> Generator[Event, Any, float]:
            try:
                elapsed = yield from self.wire_path(src, dst, nbytes, model)
            except (LinkDown, MessageDropped):
                return -1.0  # fire-and-forget: losses are silent here
            if on_delivered is not None:
                on_delivered()
            return elapsed

        return self.env.process(_run(), name=f"xfer:{src.name}->{dst.name}")
