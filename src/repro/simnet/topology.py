"""Cluster topology: nodes, NICs, and the timed wire path between them.

The cluster is deliberately flat (single full-bisection switch) — Frontera,
Stampede2 and the internal cluster are all fat-tree systems where the paper's
job sizes (≤ 32 nodes) see full bisection bandwidth; node NICs, not the
switch, are the contended resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.simnet.engine import SimEngine
from repro.simnet.events import Event
from repro.simnet.fluid import FluidNetwork
from repro.simnet.interconnect import Fabric, WireModel, loopback
from repro.simnet.resources import Resource
from repro.util.stats import OnlineStats

# Messages at or below this size bypass NIC-lane serialization and pay only
# latency + their own (tiny) serialization time. Real fabrics interleave at
# packet granularity, so a 64-byte control message (MPI RTS/CTS, ACKs) never
# queues behind a multi-megabyte bulk transfer; our message-granularity NIC
# model would otherwise stall rendezvous handshakes by whole bulk slots.
CONTROL_BYPASS_BYTES = 256


@dataclass
class NicStats:
    """Per-node NIC accounting (useful for incast analysis in tests)."""

    tx_bytes: int = 0
    rx_bytes: int = 0
    tx_messages: int = 0
    rx_messages: int = 0


class SimNode:
    """A compute node: CPU cores plus a full-duplex NIC.

    ``nic_lanes`` models NIC parallelism: modern HCAs drive the wire from
    several engines, but the aggregate rate is the wire rate, so the default
    is a single serialization lane per direction.
    """

    def __init__(
        self,
        env: SimEngine,
        index: int,
        name: str,
        cores: int,
        nic_lanes: int = 1,
    ) -> None:
        self.env = env
        self.index = index
        self.name = name
        self.cores = Resource(env, capacity=cores)
        self.tx = Resource(env, capacity=nic_lanes)
        self.rx = Resource(env, capacity=nic_lanes)
        self.nic_stats = NicStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimNode {self.name} cores={self.cores.capacity}>"


class NetTrace:
    """Aggregate transfer statistics, grouped by wire-model name."""

    def __init__(self) -> None:
        self.by_model: dict[str, OnlineStats] = {}
        self.bytes_by_model: dict[str, int] = {}
        self.hooks: list[Callable[[dict[str, Any]], None]] = []

    def record(
        self, model: WireModel, src: SimNode, dst: SimNode, nbytes: int, elapsed: float
    ) -> None:
        stats = self.by_model.setdefault(model.name, OnlineStats())
        stats.add(elapsed)
        self.bytes_by_model[model.name] = (
            self.bytes_by_model.get(model.name, 0) + nbytes
        )
        for hook in self.hooks:
            hook(
                {
                    "model": model.name,
                    "src": src.name,
                    "dst": dst.name,
                    "nbytes": nbytes,
                    "elapsed": elapsed,
                }
            )

    def total_bytes(self) -> int:
        return sum(self.bytes_by_model.values())


class SimCluster:
    """A set of :class:`SimNode` connected by one fabric.

    The cluster provides the *timed wire path* primitive
    (:meth:`wire_path`): it charges NIC serialization at both endpoints and
    wire latency, and completes when the last byte lands at the receiver.
    Endpoint CPU overheads (``o_s``/``o_r``) are charged by the protocol
    layers (sockets / MPI), because *where* they are charged — an event-loop
    thread vs. an application thread — is exactly what differs between the
    paper's designs.
    """

    def __init__(
        self,
        env: SimEngine,
        fabric: Fabric,
        n_nodes: int,
        cores_per_node: int,
        nic_lanes: int = 1,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        if cores_per_node < 1:
            raise ValueError(f"need at least one core per node, got {cores_per_node}")
        self.env = env
        self.fabric = fabric
        self.nodes = [
            SimNode(env, i, f"node{i}", cores=cores_per_node, nic_lanes=nic_lanes)
            for i in range(n_nodes)
        ]
        self._by_name = {node.name: node for node in self.nodes}
        self.trace = NetTrace()
        self._loopback = loopback(fabric)
        self.fluid = FluidNetwork(env)

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, ref: int | str | SimNode) -> SimNode:
        if isinstance(ref, SimNode):
            return ref
        if isinstance(ref, int):
            return self.nodes[ref]
        return self._by_name[ref]

    # -- the timed wire path --------------------------------------------------
    def wire_path(
        self,
        src: SimNode,
        dst: SimNode,
        nbytes: int,
        model: WireModel,
    ) -> Generator[Event, Any, float]:
        """Generator charging the wire time for one message.

        Same-node messages use the shared-memory loopback model and bypass
        NIC resources. Cross-node messages hold the sender's TX lane and the
        receiver's RX lane for the serialization time (this is what produces
        incast queueing at a hot receiver), then pay the protocol latency.

        Returns the elapsed simulated time.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        env = self.env
        start = env.now
        if src is dst:
            lo = self._loopback
            yield env.timeout(lo.protocol_latency(nbytes) + lo.serialization_time(nbytes))
            elapsed = env.now - start
            self.trace.record(lo, src, dst, nbytes, elapsed)
            return elapsed

        if nbytes <= CONTROL_BYPASS_BYTES:
            # Control-sized messages interleave at packet granularity and
            # never queue behind bulk flows.
            yield env.timeout(
                model.serialization_time(nbytes) + model.protocol_latency(nbytes)
            )
        else:
            # Bulk payloads: flow-level fair sharing of the protocol stack's
            # effective bandwidth at both endpoints (see simnet.fluid). The
            # per-chunk stack cost is CPU/protocol work, charged on top.
            cap = min(model.effective_bandwidth_Bps(), model.fabric.line_rate_Bps)
            done = self.fluid.transfer(
                [
                    ((src.index, "tx", model.name), cap),
                    ((dst.index, "rx", model.name), cap),
                ],
                nbytes,
            )
            yield done
            yield env.timeout(
                model.protocol_latency(nbytes)
                + model.n_chunks(nbytes) * model.per_chunk_s
            )

        src.nic_stats.tx_bytes += nbytes
        src.nic_stats.tx_messages += 1
        dst.nic_stats.rx_bytes += nbytes
        dst.nic_stats.rx_messages += 1
        elapsed = env.now - start
        self.trace.record(model, src, dst, nbytes, elapsed)
        return elapsed

    def transfer_async(
        self,
        src: SimNode,
        dst: SimNode,
        nbytes: int,
        model: WireModel,
        on_delivered: Callable[[], None] | None = None,
    ):
        """Fire-and-forget wire transfer; returns the delivery Process event."""

        def _run() -> Generator[Event, Any, float]:
            elapsed = yield from self.wire_path(src, dst, nbytes, model)
            if on_delivered is not None:
                on_delivered()
            return elapsed

        return self.env.process(_run(), name=f"xfer:{src.name}->{dst.name}")
