"""Discrete-event cluster/network simulator.

This package is the hardware substitute for the paper's testbeds (TACC
Frontera, TACC Stampede2 and OSU's internal IB-EDR cluster): a deterministic
virtual-time kernel, node/NIC topology, per-protocol wire cost models and a
TCP-like stream socket layer. Everything above (the MPI runtime, Netty and
the Spark engine) runs as simulation processes on this kernel.
"""

from repro.simnet.engine import EmptySchedule, SimEngine
from repro.simnet.events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Interrupt,
    Process,
    SimError,
    Timeout,
)
from repro.simnet.interconnect import (
    FABRICS,
    IB_EDR,
    IB_HDR,
    OPA,
    PROTOCOLS,
    Fabric,
    WireModel,
    loopback,
    mpi_over,
    rdma_over,
    tcp_over,
)
from repro.simnet.resources import Resource, Store, StoreCancelled
from repro.simnet.sockets import (
    ListeningSocket,
    Segment,
    SimSocket,
    SocketAddress,
    SocketError,
    SocketStack,
)
from repro.simnet.topology import (
    LinkDown,
    LinkState,
    MessageDropped,
    NetTrace,
    SimCluster,
    SimNode,
)

__all__ = [
    "SimEngine",
    "EmptySchedule",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimError",
    "Resource",
    "Store",
    "StoreCancelled",
    "Fabric",
    "WireModel",
    "IB_HDR",
    "IB_EDR",
    "OPA",
    "FABRICS",
    "PROTOCOLS",
    "tcp_over",
    "rdma_over",
    "mpi_over",
    "loopback",
    "SimCluster",
    "SimNode",
    "NetTrace",
    "LinkState",
    "LinkDown",
    "MessageDropped",
    "SocketStack",
    "SocketAddress",
    "SimSocket",
    "ListeningSocket",
    "Segment",
    "SocketError",
]
